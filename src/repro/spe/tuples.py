"""Tuple and stream-element types.

A stream is an unbounded sequence of tuples sharing the same schema
``<ts, a1, ..., an>`` (section 2 of the paper).  :class:`StreamTuple` is the
in-memory representation of one such tuple.  Besides the event timestamp and
the payload attributes, a tuple can carry:

* ``meta`` -- the provenance metadata attached by an instrumented operator
  (``None`` when provenance is disabled).  For GeneaLog this is the
  fixed-size :class:`repro.core.meta.GeneaLogMeta`; for the Ariadne-style
  baseline it is a variable-length annotation.
* ``wall`` -- the wall-clock instant at which the *latest source tuple
  contributing to this tuple* entered the system.  It is maintained by every
  operator (``max`` over inputs) and is what the latency metric of the
  evaluation uses ("the average time interleaving the production of each sink
  tuple and the reception of the latest source tuple contributing to it").

Streams also transport two kinds of control elements: :class:`Watermark`
(a promise that no tuple with a smaller timestamp will follow) and the
singleton :data:`END_OF_STREAM`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Optional


class StreamTuple:
    """A single data tuple flowing through a query.

    Parameters
    ----------
    ts:
        Event timestamp (seconds, monotone per stream).
    values:
        Mapping from attribute name to value.  The mapping is copied so the
        caller may reuse its dictionary.
    meta:
        Optional provenance metadata (set by instrumented operators).
    wall:
        Wall-clock arrival instant of the latest contributing source tuple.
    """

    __slots__ = ("ts", "values", "meta", "wall", "order_key", "__weakref__")

    def __init__(
        self,
        ts: float,
        values: Optional[Mapping[str, Any]] = None,
        meta: Any = None,
        wall: float = 0.0,
    ) -> None:
        self.ts = ts
        self.values: Dict[str, Any] = dict(values) if values else {}
        self.meta = meta
        self.wall = wall
        #: opaque comparable tag used by the keyed data-parallel machinery:
        #: a Partition stamps forwarded tuples with their stream sequence
        #: number, sharded Aggregate/Join replicas tag outputs with their
        #: sequential emission rank, and the order-restoring Merge sorts
        #: equal-timestamp tuples by it (then clears it).  None elsewhere.
        self.order_key = None

    # -- attribute access -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.values[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def get(self, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` or ``default`` when absent."""
        return self.values.get(key, default)

    def keys(self) -> Iterable[str]:
        """Return the attribute names of the tuple."""
        return self.values.keys()

    # -- fast construction --------------------------------------------------
    @classmethod
    def owned(
        cls,
        ts: float,
        values: Optional[Dict[str, Any]] = None,
        meta: Any = None,
        wall: float = 0.0,
    ) -> "StreamTuple":
        """Build a tuple that takes ownership of ``values`` without copying.

        The constructor defensively copies the ``values`` mapping so callers
        may reuse their dictionary; hot operators that build a *fresh* dict
        for every output tuple (Aggregate, Join, the SU/MU unfolders) pay for
        that copy without needing it.  ``owned`` skips the copy: the caller
        must hand over a plain ``dict`` it will not mutate afterwards.
        """
        self = cls.__new__(cls)
        self.ts = ts
        self.values = values if values is not None else {}
        self.meta = meta
        self.wall = wall
        self.order_key = None
        return self

    # -- derivation helpers ------------------------------------------------
    def derive(
        self,
        ts: Optional[float] = None,
        values: Optional[Mapping[str, Any]] = None,
        copy: bool = True,
    ) -> "StreamTuple":
        """Create a new tuple based on this one.

        The new tuple never shares the ``meta`` object (instrumented
        operators are responsible for setting it) but inherits the
        wall-clock arrival of this tuple.  With ``copy=False`` and an
        explicit ``values`` dict, the new tuple takes ownership of that dict
        instead of copying it (see :meth:`owned`).
        """
        if not copy and values is not None and type(values) is dict:
            return StreamTuple.owned(
                ts=self.ts if ts is None else ts,
                values=values,
                meta=None,
                wall=self.wall,
            )
        return StreamTuple(
            ts=self.ts if ts is None else ts,
            values=self.values if values is None else values,
            meta=None,
            wall=self.wall,
        )

    def copy(self) -> "StreamTuple":
        """Return a shallow copy (new values dict, same meta reference)."""
        duplicate = StreamTuple(
            ts=self.ts, values=self.values, meta=self.meta, wall=self.wall
        )
        duplicate.order_key = self.order_key
        return duplicate

    # -- comparison / debugging -------------------------------------------
    def same_payload(self, other: "StreamTuple") -> bool:
        """True when ``other`` carries the same timestamp and attributes."""
        return self.ts == other.ts and self.values == other.values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"StreamTuple(ts={self.ts}, {attrs})"


class Watermark:
    """A promise that no tuple with ``ts < watermark.ts`` will follow."""

    __slots__ = ("ts",)

    def __init__(self, ts: float) -> None:
        self.ts = ts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Watermark({self.ts})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Watermark) and other.ts == self.ts

    def __hash__(self) -> int:
        return hash(("Watermark", self.ts))


class _EndOfStream:
    """Singleton marker signalling that a stream is exhausted."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "END_OF_STREAM"


END_OF_STREAM = _EndOfStream()

#: Watermark value used once a stream has ended.
FINAL_WATERMARK = math.inf


def owned_values(values: Mapping[str, Any]) -> Dict[str, Any]:
    """Turn a user-returned attribute mapping into an engine-owned dict.

    Plain dicts are taken over as-is (user functions hand the mapping to the
    engine and must not mutate it afterwards); any other mapping type is
    copied into a fresh dict.
    """
    return values if type(values) is dict else dict(values)


def is_tuple(element: Any) -> bool:
    """Return True when ``element`` is a data tuple (not a control element)."""
    return isinstance(element, StreamTuple)
