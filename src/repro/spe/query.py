"""Query: the DAG of operators that makes up a continuous query."""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.spe.channels import Channel
from repro.spe.errors import QueryValidationError
from repro.spe.operators.aggregate import AggregateOperator, WindowSpec
from repro.spe.operators.base import Operator
from repro.spe.operators.filter import FilterOperator
from repro.spe.operators.join import JoinOperator
from repro.spe.operators.map import FlatMapOperator, MapOperator
from repro.spe.operators.merge import MergeOperator
from repro.spe.operators.multiplex import MultiplexOperator
from repro.spe.operators.partition import PartitionOperator
from repro.spe.operators.router import RouterOperator
from repro.spe.operators.send_receive import ReceiveOperator, SendOperator
from repro.spe.operators.sink import SinkOperator
from repro.spe.operators.sort import SortOperator
from repro.spe.operators.source import SourceOperator
from repro.spe.operators.union import UnionOperator
from repro.spe.provenance_api import ProvenanceManager
from repro.spe.streams import Stream
from repro.spe.tuples import StreamTuple


class Query:
    """Builder and container for a DAG of streaming operators.

    Operators are added with the ``add_*`` helpers (or :meth:`add` for custom
    operators) and wired with :meth:`connect`.  :meth:`validate` checks the
    graph is a DAG with correctly-arity'd operators, and
    :meth:`topological_order` yields the deterministic execution order used
    by the scheduler.
    """

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self.operators: List[Operator] = []
        self.streams: List[Stream] = []
        self._edges: List[Tuple[Operator, Operator]] = []
        self._by_name: Dict[str, Operator] = {}

    # -- generic registration -------------------------------------------------
    def add(self, operator: Operator) -> Operator:
        """Register ``operator`` with the query and return it."""
        if operator.name in self._by_name:
            raise QueryValidationError(
                f"query {self.name!r} already has an operator named {operator.name!r}"
            )
        self.operators.append(operator)
        self._by_name[operator.name] = operator
        return operator

    def __getitem__(self, name: str) -> Operator:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- convenience constructors ------------------------------------------------
    def add_source(
        self, name: str, supplier, batch_size: int = 256, enforce_order: bool = True
    ) -> SourceOperator:
        """Add a Source fed by ``supplier`` (iterable or callable).

        Pass ``enforce_order=False`` for suppliers with bounded disorder and
        place a :meth:`add_sort` operator right after the source.
        """
        return self.add(
            SourceOperator(name, supplier, batch_size=batch_size, enforce_order=enforce_order)
        )

    def add_sort(self, name: str, slack: float, drop_violations: bool = False) -> SortOperator:
        """Add a Sort operator re-ordering a stream with bounded disorder."""
        return self.add(SortOperator(name, slack, drop_violations=drop_violations))

    def add_sink(
        self,
        name: str,
        callback: Optional[Callable[[StreamTuple], None]] = None,
        keep_tuples: bool = True,
    ) -> SinkOperator:
        """Add a Sink collecting the query results."""
        return self.add(SinkOperator(name, callback=callback, keep_tuples=keep_tuples))

    def add_map(self, name: str, function) -> MapOperator:
        """Add a one-to-one Map operator."""
        return self.add(MapOperator(name, function))

    def add_flatmap(self, name: str, function) -> FlatMapOperator:
        """Add a one-to-many Map operator."""
        return self.add(FlatMapOperator(name, function))

    def add_filter(self, name: str, predicate) -> FilterOperator:
        """Add a Filter operator."""
        return self.add(FilterOperator(name, predicate))

    def add_multiplex(self, name: str) -> MultiplexOperator:
        """Add a Multiplex operator (one output port per later ``connect``)."""
        return self.add(MultiplexOperator(name))

    def add_router(
        self, name: str, predicates: Sequence[Optional[Callable[[StreamTuple], bool]]]
    ) -> RouterOperator:
        """Add a Router (fused Multiplex + Filters) operator."""
        return self.add(RouterOperator(name, predicates))

    def add_union(self, name: str) -> UnionOperator:
        """Add a Union operator merging several streams."""
        return self.add(UnionOperator(name))

    def add_partition(
        self,
        name: str,
        key_function,
        partitioner=None,
        stamp_sequence: bool = False,
    ) -> PartitionOperator:
        """Add a Partition hash-routing tuples to one shard output per ``connect``."""
        return self.add(
            PartitionOperator(
                name, key_function, partitioner=partitioner, stamp_sequence=stamp_sequence
            )
        )

    def add_merge(self, name: str) -> MergeOperator:
        """Add an order-restoring Merge re-uniting key-sharded streams."""
        return self.add(MergeOperator(name))

    def add_aggregate(
        self,
        name: str,
        window: WindowSpec,
        aggregate_function,
        key_function=None,
        contributors_function=None,
    ) -> AggregateOperator:
        """Add a windowed (optionally grouped) Aggregate operator."""
        return self.add(
            AggregateOperator(
                name,
                window,
                aggregate_function,
                key_function,
                contributors_function=contributors_function,
            )
        )

    def add_join(self, name: str, window_size: float, predicate, combiner) -> JoinOperator:
        """Add a windowed Join operator (left = first connect, right = second)."""
        return self.add(JoinOperator(name, window_size, predicate, combiner))

    def add_send(
        self, name: str, channel: Channel, ship_provenance: bool = True
    ) -> SendOperator:
        """Add a Send operator writing to ``channel``.

        ``ship_provenance=False`` omits the provenance payload from the wire
        format; use it on streams whose consumers never read the re-attached
        metadata (the GeneaLog unfolded streams feeding the MU, whose tuples
        carry their provenance inside their attributes).
        """
        return self.add(SendOperator(name, channel, ship_provenance=ship_provenance))

    def add_receive(self, name: str, channel: Channel) -> ReceiveOperator:
        """Add a Receive operator reading from ``channel``."""
        return self.add(ReceiveOperator(name, channel))

    # -- wiring --------------------------------------------------------------------
    def connect(
        self,
        upstream: Operator,
        downstream: Operator,
        name: str = "",
        sorted_stream: bool = True,
    ) -> Stream:
        """Create a stream from ``upstream`` to ``downstream`` and return it.

        ``sorted_stream=False`` disables the timestamp-order check on the
        stream; it is meant for the connection between an out-of-order Source
        and its SortOperator.
        """
        missing = [
            op.name
            for op in (upstream, downstream)
            if self._by_name.get(op.name) is not op
        ]
        if missing:
            raise QueryValidationError(
                f"cannot connect {upstream.name!r} -> {downstream.name!r}: "
                f"operator(s) {', '.join(repr(name) for name in missing)} "
                f"not added to query {self.name!r}"
            )
        if upstream is downstream:
            raise QueryValidationError(
                f"cannot connect operator {upstream.name!r} to itself "
                f"(self-loops are not allowed in query {self.name!r})"
            )
        stream = Stream(
            name=name or f"{upstream.name}->{downstream.name}",
            enforce_order=sorted_stream,
        )
        upstream.add_output(stream)
        downstream.add_input(stream)
        self.streams.append(stream)
        self._edges.append((upstream, downstream))
        return stream

    def disconnect(self, stream: Stream) -> Tuple[Operator, Operator]:
        """Remove ``stream`` from the query; return its (producer, consumer).

        Used by :func:`repro.core.provenance.attach_intra_process_provenance`
        to splice provenance operators in front of already-connected Sinks.
        """
        producer = consumer = None
        for op in self.operators:
            if stream in op.outputs:
                producer = op
                op.outputs.remove(stream)
            if stream in op.inputs:
                consumer = op
                op.inputs.remove(stream)
        if producer is None or consumer is None:
            raise QueryValidationError("stream is not part of this query")
        stream.consumer = None  # stop waking the detached operator
        self.streams.remove(stream)
        self._edges.remove((producer, consumer))
        return producer, consumer

    def producer_of(self, stream: Stream) -> Operator:
        """Return the operator writing to ``stream``."""
        for op in self.operators:
            if stream in op.outputs:
                return op
        raise QueryValidationError("stream has no producer in this query")

    # -- analysis --------------------------------------------------------------------
    def sources(self) -> List[SourceOperator]:
        """Every Source operator of the query."""
        return [op for op in self.operators if isinstance(op, SourceOperator)]

    def sinks(self) -> List[SinkOperator]:
        """Every Sink operator of the query."""
        return [op for op in self.operators if isinstance(op, SinkOperator)]

    def receives(self) -> List[ReceiveOperator]:
        """Every Receive operator of the query."""
        return [op for op in self.operators if isinstance(op, ReceiveOperator)]

    def sends(self) -> List[SendOperator]:
        """Every Send operator of the query."""
        return [op for op in self.operators if isinstance(op, SendOperator)]

    def topological_order(self) -> List[Operator]:
        """Operators sorted so that every producer precedes its consumers."""
        indegree: Dict[Operator, int] = {op: 0 for op in self.operators}
        adjacency: Dict[Operator, List[Operator]] = {op: [] for op in self.operators}
        for upstream, downstream in self._edges:
            adjacency[upstream].append(downstream)
            indegree[downstream] += 1
        ready = deque(op for op in self.operators if indegree[op] == 0)
        ordered: List[Operator] = []
        while ready:
            op = ready.popleft()
            ordered.append(op)
            for succ in adjacency[op]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(ordered) != len(self.operators):
            raise QueryValidationError(f"query {self.name!r} contains a cycle")
        return ordered

    def validate(self) -> None:
        """Check the query graph is well formed; raise on any problem."""
        self.topological_order()
        for op in self.operators:
            op.validate()
            if not isinstance(op, (SourceOperator, ReceiveOperator)) and not op.inputs:
                raise QueryValidationError(f"operator {op.name!r} has no input stream")
            if (
                not isinstance(op, (SinkOperator, SendOperator))
                and op.max_outputs != 0
                and not op.outputs
            ):
                raise QueryValidationError(f"operator {op.name!r} has no output stream")

    # -- provenance ---------------------------------------------------------------------
    def set_provenance(self, manager: ProvenanceManager) -> None:
        """Install ``manager`` on every operator of the query."""
        for op in self.operators:
            op.set_provenance(manager)

    # -- statistics ------------------------------------------------------------------------
    def buffered_tuples(self) -> int:
        """Tuples currently buffered in streams and in stateful operator state."""
        queued = sum(len(stream) for stream in self.streams)
        state = sum(
            op.buffered_tuples()
            for op in self.operators
            if hasattr(op, "buffered_tuples")
        )
        return queued + state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Query(name={self.name!r}, operators={len(self.operators)})"
