"""Exception types raised by the SPE substrate."""


class SPEError(Exception):
    """Base class for every error raised by :mod:`repro.spe`."""


class QueryValidationError(SPEError):
    """The query DAG is malformed (cycles, dangling ports, arity mismatch)."""


class StreamOrderError(SPEError):
    """A producer violated the timestamp-sorted stream contract."""


class SchedulingError(SPEError):
    """The scheduler could not make progress or was misconfigured."""


class SerializationError(SPEError):
    """A tuple could not be serialised or deserialised at a process boundary."""


class ChannelError(SPEError):
    """A Send/Receive channel was used incorrectly (e.g. after closing)."""
