"""TCP framing and the socket-backed channel transport.

The :class:`~repro.spe.cluster.ClusterRuntime` places SPE instances on
separate hosts; their channels then cross a real network boundary instead of
a :mod:`multiprocessing` pipe.  This module provides the wire layer:

* a **length-prefixed frame codec** -- every message travels as a 4-byte
  big-endian length followed by that many payload bytes.  TCP is a byte
  stream, so the decoder tolerates arbitrary fragmentation (frames split
  across ``recv`` calls, several frames in one read) and flags torn trailing
  frames and absurd lengths (corruption / protocol confusion) instead of
  allocating unbounded buffers.
* **messages**: the same ``(tag, body)`` protocol the
  :class:`~repro.spe.channels.ProcessTransport` pipes carry -- ``("d",
  [payloads...])`` data batches of already-serialised tuple payloads,
  ``("w", ts)`` watermark advances, ``("c", None)`` close markers.  They are
  encoded *binary* by default (a one-byte tag, varint-framed payloads that
  may be :mod:`repro.spe.codec` batch blobs or legacy JSON documents, a
  fixed float64 watermark); the original JSON array encoding
  (:func:`encode_message` / :func:`decode_message`) remains the
  compatibility/debug format, and the decoder auto-detects it (JSON frames
  start with ``[``), so an old peer can still talk to a new consumer.
  Payloads are the exact objects the Send operator produced, so a tuple's
  bytes on the wire are identical across the process and cluster runtimes.
* :class:`SocketTransport` -- the :class:`~repro.spe.channels.ChannelTransport`
  speaking that protocol over a TCP socket.  The producer side owns a
  connected (blocking) socket and writes one frame per send/batch/control
  message; the consumer side owns a non-blocking socket it drains into a
  local buffer exactly like the pipe transport drains its pipe.  Both sides
  may live on the same object (a loopback socketpair is created lazily),
  which is what the transport-contract unit tests exercise, or be attached
  separately by the cluster worker wiring.
* :func:`connect_with_retry` -- bounded retry/backoff TCP connect that names
  the unreachable ``host:port`` when it gives up.

A consumer socket reaching EOF *before* the close marker means the producer
worker died mid-run; the transport raises :class:`ChannelError` from the
drain so the Receive operator's worker fails fast and the coordinator can
stop the rest of the deployment.  EOF after the close marker is the normal
end of a connection.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.spe.channels import ChannelTransport, Payload
from repro.spe.codec import read_uvarint, write_uvarint
from repro.spe.errors import ChannelError, SerializationError
from repro.spe.tuples import FINAL_WATERMARK

#: frame header: payload length as a 4-byte big-endian unsigned integer.
FRAME_HEADER = struct.Struct(">I")

#: refuse frames larger than this (corrupt length prefix / wrong protocol).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: message tags shared with the pipe transport's wire protocol.
MSG_DATA = "d"
MSG_WATERMARK = "w"
MSG_CLOSE = "c"

#: bytes read from the socket per drain iteration.
_RECV_CHUNK = 1 << 16


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame."""
    if len(payload) > MAX_FRAME_BYTES:
        raise SerializationError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def encode_message(tag: str, body) -> bytes:
    """Encode one ``(tag, body)`` protocol message into a frame."""
    try:
        payload = json.dumps([tag, body], separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"cannot encode message {tag!r}: {exc}") from exc
    return encode_frame(payload)


def decode_message(payload: bytes) -> Tuple[str, object]:
    """Decode one frame payload back into its ``(tag, body)`` message."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"cannot decode message frame: {exc}") from exc
    if not isinstance(document, list) or len(document) != 2 or not isinstance(document[0], str):
        raise SerializationError(
            f"malformed message frame: expected a [tag, body] pair, got {document!r}"
        )
    return document[0], document[1]


#: one-byte tags of the binary channel-message encoding.  The JSON fallback
#: is detected by its first byte: a JSON message frame always starts with
#: ``[`` (0x5B), which none of these tags use.
_BIN_DATA = ord("D")
_BIN_WATERMARK = ord("W")
_BIN_CLOSE = ord("C")
_JSON_OPEN = ord("[")

#: per-payload kind markers inside a binary data message.
_KIND_BLOB = 0  # bytes: a binary codec batch blob
_KIND_TEXT = 1  # str: a legacy JSON tuple document

_WATERMARK_STRUCT = struct.Struct("<d")


def encode_channel_message(tag: str, body) -> bytes:
    """Encode one channel message into a frame using the binary encoding.

    Data bodies are sequences of payloads; each payload ships with a kind
    marker so ``bytes`` batch blobs and ``str`` JSON documents both survive
    (a channel can legitimately carry a mix, e.g. fault-tolerance replays
    into a binary-configured channel).
    """
    if tag == MSG_DATA:
        out = bytearray()
        out.append(_BIN_DATA)
        write_uvarint(out, len(body))
        for payload in body:
            if isinstance(payload, bytes):
                out.append(_KIND_BLOB)
                write_uvarint(out, len(payload))
                out += payload
            elif isinstance(payload, str):
                raw = payload.encode("utf-8")
                out.append(_KIND_TEXT)
                write_uvarint(out, len(raw))
                out += raw
            else:
                raise SerializationError(
                    f"cannot encode data message: payload of type "
                    f"{type(payload).__name__} is neither bytes nor str"
                )
        return encode_frame(bytes(out))
    if tag == MSG_WATERMARK:
        return encode_frame(bytes((_BIN_WATERMARK,)) + _WATERMARK_STRUCT.pack(body))
    if tag == MSG_CLOSE:
        return encode_frame(bytes((_BIN_CLOSE,)))
    raise SerializationError(f"cannot encode message with unknown tag {tag!r}")


def decode_channel_message(frame: bytes, channel: str = "") -> Tuple[str, object]:
    """Decode one frame payload into ``(tag, body)``, either encoding.

    Binary messages are recognised by their tag byte; a frame starting with
    ``[`` is the JSON compatibility encoding and is delegated to
    :func:`decode_message`.
    """
    if not frame:
        raise SerializationError(
            f"channel {channel!r}: empty message frame on the wire"
        )
    lead = frame[0]
    if lead == _JSON_OPEN:
        return decode_message(frame)
    try:
        if lead == _BIN_DATA:
            count, pos = read_uvarint(frame, 1)
            payloads: List[Payload] = []
            for _ in range(count):
                kind = frame[pos]
                length, pos = read_uvarint(frame, pos + 1)
                end = pos + length
                raw = frame[pos:end]
                if len(raw) != length:
                    raise SerializationError(
                        f"channel {channel!r}: data message truncated "
                        f"(payload declares {length} bytes, {len(raw)} left)"
                    )
                if kind == _KIND_BLOB:
                    payloads.append(raw)
                elif kind == _KIND_TEXT:
                    payloads.append(raw.decode("utf-8"))
                else:
                    raise SerializationError(
                        f"channel {channel!r}: unknown payload kind {kind:#x} "
                        "in a data message"
                    )
                pos = end
            if pos != len(frame):
                raise SerializationError(
                    f"channel {channel!r}: {len(frame) - pos} trailing byte(s) "
                    "after a data message"
                )
            return MSG_DATA, payloads
        if lead == _BIN_WATERMARK:
            (ts,) = _WATERMARK_STRUCT.unpack_from(frame, 1)
            return MSG_WATERMARK, ts
        if lead == _BIN_CLOSE:
            return MSG_CLOSE, None
    except (IndexError, struct.error, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"channel {channel!r}: truncated or corrupt channel message "
            f"({len(frame)} bytes): {exc}"
        ) from exc
    raise SerializationError(
        f"channel {channel!r}: unknown message tag {lead:#x} on the wire"
    )


class FrameDecoder:
    """Incremental decoder of length-prefixed frames from a byte stream.

    Feed it whatever ``recv`` returned -- half a header, three frames at
    once -- and pop the complete frames; partial input stays buffered until
    the rest arrives.  A declared length beyond :data:`MAX_FRAME_BYTES`
    raises immediately (a corrupt prefix would otherwise demand gigabytes);
    ``name`` identifies the channel (or control stream) the bytes arrived
    on, so that error points at the offending connection.
    """

    __slots__ = ("_buffer", "ready", "name")

    def __init__(self, name: str = "") -> None:
        self._buffer = bytearray()
        #: the channel / stream these bytes belong to (used in errors).
        self.name = name
        #: frames decoded but not yet consumed by :func:`recv_frame`.
        self.ready: Deque[bytes] = deque()

    def feed(self, data: bytes) -> List[bytes]:
        """Consume ``data``; return every frame payload it completed."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        buffer = self._buffer
        offset = 0
        while True:
            if len(buffer) - offset < FRAME_HEADER.size:
                break
            (length,) = FRAME_HEADER.unpack_from(buffer, offset)
            if length > MAX_FRAME_BYTES:
                raise SerializationError(
                    f"channel {self.name!r}: frame header declares {length} "
                    f"bytes ({length / (1 << 20):.0f} MiB), beyond the "
                    f"{MAX_FRAME_BYTES}-byte limit (corrupt or foreign stream)"
                )
            start = offset + FRAME_HEADER.size
            if len(buffer) - start < length:
                break
            frames.append(bytes(buffer[start : start + length]))
            offset = start + length
        if offset:
            del buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)


def send_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one already-encoded frame to a blocking socket."""
    sock.sendall(frame)


def recv_frame(sock: socket.socket, decoder: FrameDecoder) -> Optional[bytes]:
    """Block until one complete frame arrives; ``None`` on a clean EOF.

    EOF in the middle of a frame (torn tail) raises: the peer vanished
    mid-message and the bytes read so far cannot be trusted.
    """
    while not decoder.ready:
        data = sock.recv(_RECV_CHUNK)
        if not data:
            if decoder.pending_bytes:
                raise ChannelError(
                    "connection closed mid-frame "
                    f"({decoder.pending_bytes} torn trailing byte(s))"
                )
            return None
        decoder.ready.extend(decoder.feed(data))
    return decoder.ready.popleft()


def connect_with_retry(
    host: str,
    port: int,
    retries: int = 20,
    backoff_s: float = 0.05,
    timeout_s: float = 5.0,
    what: str = "worker",
) -> socket.socket:
    """Connect to ``host:port`` with bounded retry/backoff.

    Retries cover the races a cluster bring-up actually hits (a daemon still
    binding its listener, a backlog momentarily full); after ``retries``
    attempts the error names the unreachable endpoint so a typo'd host list
    points straight at the offending entry.  The backoff doubles per attempt
    and is capped at one second.
    """
    last_error: Optional[Exception] = None
    delay = backoff_s
    for _ in range(max(1, retries)):
        try:
            sock = socket.create_connection((host, port), timeout=timeout_s)
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError as exc:
            last_error = exc
            time.sleep(delay)
            delay = min(delay * 2, 1.0)
    raise ChannelError(
        f"cannot reach {what} at {host}:{port} after {max(1, retries)} "
        f"attempt(s): {last_error}"
    )


class SocketTransport(ChannelTransport):
    """A TCP socket carrying the serialised channel payloads.

    Speaks the same message protocol as the pipe-backed
    :class:`~repro.spe.channels.ProcessTransport` -- data batches of
    pre-serialised tuples, watermark advances, close markers -- with each
    message travelling as one length-prefixed frame, so one ``send_many`` is
    one frame (and typically one TCP segment burst).

    A transport starts *detached*: the cluster worker wiring attaches the
    producer socket on the sending host and the consumer socket on the
    receiving host (:meth:`attach_producer` / :meth:`attach_consumer`).  When
    both sides are driven through a single detached object -- the unit-test
    contract, or a single-process deployment -- a loopback
    :func:`socket.socketpair` is created lazily on first use.

    Like the pipe transport, the consumer-side state (:attr:`watermark`,
    :attr:`closed`, ``len()``) is only refreshed by :meth:`receive` /
    :meth:`receive_all` drains, never by property reads, so a coordinator
    inspecting its (detached) copy of the object steals nothing.  Instances
    are picklable while detached: a plan shipped to a cluster worker carries
    the transport's identity, and the worker attaches the live sockets.
    """

    local = False

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._producer_sock: Optional[socket.socket] = None
        self._consumer_sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(name)
        self._buffer: Deque[Payload] = deque()
        self._watermark: float = float("-inf")
        self._closed = False
        self._eof = False

    # -- plan shipping -----------------------------------------------------
    def __getstate__(self):
        if self._producer_sock is not None or self._consumer_sock is not None:
            raise SerializationError(
                f"socket transport {self.name!r} is attached to live sockets "
                "and cannot be serialised; ship plans before wiring"
            )
        return {"name": self.name}

    def __setstate__(self, state) -> None:
        self.__init__(state["name"])

    # -- wiring ------------------------------------------------------------
    def attach_producer(self, sock: socket.socket) -> None:
        """Install the connected socket the producer side writes frames to."""
        if self._producer_sock is not None:
            raise ChannelError(f"channel {self.name!r} already has a producer socket")
        sock.setblocking(True)
        self._producer_sock = sock

    def attach_consumer(self, sock: socket.socket) -> None:
        """Install the connected socket the consumer side drains frames from."""
        if self._consumer_sock is not None:
            raise ChannelError(f"channel {self.name!r} already has a consumer socket")
        sock.setblocking(False)
        self._consumer_sock = sock

    @property
    def consumer_socket(self) -> Optional[socket.socket]:
        """The consumer-side socket (selectable by the worker's idle loop)."""
        return self._consumer_sock

    def _ensure_loopback(self) -> None:
        """Lazily self-connect a detached transport used from one process."""
        if self._producer_sock is None and self._consumer_sock is None:
            producer, consumer = socket.socketpair()
            self.attach_producer(producer)
            self.attach_consumer(consumer)

    def close_sockets(self) -> None:
        """Tear down whichever socket ends this side holds (idempotent)."""
        for sock in (self._producer_sock, self._consumer_sock):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        self._producer_sock = None
        self._consumer_sock = None

    # -- producer side -----------------------------------------------------
    def _send_message(self, tag: str, body) -> None:
        if self._producer_sock is None:
            self._ensure_loopback()
        try:
            send_frame(self._producer_sock, encode_channel_message(tag, body))
        except OSError as exc:
            raise ChannelError(
                f"channel {self.name!r}: cannot send to peer ({exc}); the "
                "consuming worker is gone"
            ) from exc

    def send(self, payload: Payload) -> None:
        self._send_message(MSG_DATA, (payload,))

    def send_many(self, payloads: Sequence[Payload]) -> None:
        self._send_message(MSG_DATA, tuple(payloads))

    def advance_watermark(self, ts: float) -> bool:
        if ts > self._watermark:
            self._watermark = ts
            self._send_message(MSG_WATERMARK, ts)
            return True
        return False

    def close(self) -> None:
        self._closed = True
        self._watermark = FINAL_WATERMARK
        self._send_message(MSG_CLOSE, None)

    # -- consumer side -----------------------------------------------------
    def _apply(self, tag: str, body) -> None:
        if tag == MSG_DATA:
            self._buffer.extend(body)
        elif tag == MSG_WATERMARK:
            if body > self._watermark:
                self._watermark = body
        elif tag == MSG_CLOSE:
            self._closed = True
            self._watermark = FINAL_WATERMARK
        else:
            raise SerializationError(
                f"channel {self.name!r}: unknown message tag {tag!r} on the wire"
            )

    def _drain(self) -> None:
        if self._consumer_sock is None:
            self._ensure_loopback()
        sock = self._consumer_sock
        while not self._eof:
            try:
                data = sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                raise ChannelError(
                    f"channel {self.name!r}: cannot read from peer ({exc})"
                ) from exc
            if not data:
                self._eof = True
                break
            for frame in self._decoder.feed(data):
                self._apply(*decode_channel_message(frame, self.name))
        if self._eof and not self._closed:
            torn = self._decoder.pending_bytes
            raise ChannelError(
                f"channel {self.name!r}: producer socket reached EOF before "
                "the close marker (worker died mid-run"
                + (f"; {torn} torn trailing byte(s))" if torn else ")")
            )

    def receive(self) -> Optional[Payload]:
        if not self._buffer:
            self._drain()
        if not self._buffer:
            return None
        return self._buffer.popleft()

    def receive_all(self) -> List[Payload]:
        self._drain()
        items = list(self._buffer)
        self._buffer.clear()
        return items

    @property
    def watermark(self) -> float:
        return self._watermark

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attached = (
            ("P" if self._producer_sock is not None else "-")
            + ("C" if self._consumer_sock is not None else "-")
        )
        return (
            f"SocketTransport(name={self.name!r}, attached={attached}, "
            f"buffered={len(self._buffer)})"
        )
