"""Deterministic single-process scheduler.

One SPE instance is a single process whose threads share memory (section 2).
For reproducibility this scheduler runs every operator of a query
cooperatively in topological order, repeatedly, until the query is quiescent
(all sources exhausted, all streams drained, all windows flushed).  Because
every operator consumes its inputs in deterministic timestamp-merged order,
the result of a run is a pure function of the source data regardless of how
``work`` calls interleave -- the determinism property GeneaLog requires.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.spe.errors import SchedulingError
from repro.spe.operators.base import Operator
from repro.spe.query import Query


class Scheduler:
    """Runs a :class:`~repro.spe.query.Query` to completion in one process."""

    def __init__(
        self,
        query: Query,
        max_passes: int = 10_000_000,
        pass_callback: Optional[Callable[[int], None]] = None,
        callback_every: int = 16,
    ) -> None:
        self.query = query
        self.max_passes = max_passes
        self.pass_callback = pass_callback
        self.callback_every = max(1, callback_every)
        self.passes = 0
        self._order: Optional[List[Operator]] = None

    def _operators(self) -> List[Operator]:
        if self._order is None:
            self.query.validate()
            self._order = self.query.topological_order()
        return self._order

    def step(self) -> bool:
        """Run one pass over every operator; return True if anything progressed."""
        progress = False
        for operator in self._operators():
            if operator.work():
                progress = True
        self.passes += 1
        if self.pass_callback is not None and self.passes % self.callback_every == 0:
            self.pass_callback(self.passes)
        return progress

    def run(self) -> int:
        """Run until quiescence; return the number of passes executed."""
        while self.passes < self.max_passes:
            progress = self.step()
            if not progress and self._quiescent():
                return self.passes
            if not progress:
                # No operator progressed but the query is not finished: the
                # graph is stuck (e.g. a Receive waiting on a channel that is
                # fed by another instance).  The caller (DistributedRuntime)
                # handles that case; a standalone run it is an error.
                raise SchedulingError(
                    f"query {self.query.name!r} made no progress before completion"
                )
        raise SchedulingError(
            f"query {self.query.name!r} did not finish within {self.max_passes} passes"
        )

    def _quiescent(self) -> bool:
        return all(op.finished for op in self._operators())

    @property
    def finished(self) -> bool:
        """True once every operator of the query has finished."""
        return self._quiescent()
