"""Deterministic single-process schedulers.

One SPE instance is a single process whose threads share memory (section 2).
Because every operator consumes its inputs in deterministic timestamp-merged
order, the result of a run is a pure function of the source data regardless
of how ``work`` calls interleave -- the determinism property GeneaLog
requires.  Two schedulers exploit that freedom differently:

* :class:`Scheduler` (the default) is **event-driven**: streams and channels
  signal their consumer operator on every push / watermark advance / close,
  and the scheduler drains a FIFO ready-queue of runnable operators.  Idle
  operators cost nothing, quiescence is detected incrementally (an operator
  leaves the *unfinished* set the moment its ``work`` call finishes it), and
  each wake-up hands the operator a whole batch of consumable input.
* :class:`PollingScheduler` is the original whole-graph polling loop: every
  pass runs every operator in topological order until no operator makes
  progress.  It is kept as the behavioural oracle -- the scheduler
  equivalence test suite asserts both produce byte-identical sink outputs
  and provenance records.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Set

from repro.spe.errors import SchedulingError
from repro.spe.operators.base import Operator
from repro.spe.query import Query


class Scheduler:
    """Event-driven execution of a :class:`~repro.spe.query.Query`.

    The ready queue is seeded with every operator (in topological order) so
    pre-filled inputs and sources run at least once; afterwards operators
    are only enqueued when one of their input streams or channels signals
    them, or when they ask to be rescheduled (Sources that still have
    supplier data).  ``max_passes`` bounds the number of operator wake-ups;
    ``pass_callback`` is invoked every ``callback_every`` wake-ups (the
    experiment harness uses it for memory sampling).
    """

    def __init__(
        self,
        query: Query,
        max_passes: int = 10_000_000,
        pass_callback: Optional[Callable[[int], None]] = None,
        callback_every: int = 16,
    ) -> None:
        self.query = query
        self.max_passes = max_passes
        self.pass_callback = pass_callback
        self.callback_every = max(1, callback_every)
        #: number of operator wake-ups executed so far.
        self.wakeups = 0
        #: telemetry span tracer (None = disabled; installed by the obs layer).
        self.tracer = None
        #: timeline lane the wake-up spans are recorded under (the instance
        #: name for distributed deployments, the query name intra-process).
        self.trace_node = query.name
        self._ready: Deque[Operator] = deque()
        self._unfinished: Set[Operator] = set()
        self._started = False
        self._draining = False
        #: hook invoked with ``self`` when the ready queue becomes non-empty
        #: (installed by the DistributedRuntime to wake this instance).
        self.on_wake: Optional[Callable[["Scheduler"], None]] = None

    # -- wiring -----------------------------------------------------------------
    def _enqueue(self, operator: Operator) -> None:
        was_idle = not self._ready
        self._ready.append(operator)
        # While step() drains the queue, the newly enqueued operator will be
        # processed by the ongoing drain -- no need to wake the runtime.
        if was_idle and not self._draining and self.on_wake is not None:
            self.on_wake(self)

    def _start(self) -> None:
        if self._started:
            return
        self.query.validate()
        order = self.query.topological_order()
        self._unfinished = {op for op in order if not op.finished}
        for operator in order:
            operator._waker = self._enqueue
            operator._queued = False
        self._started = True
        # Seed every operator once, in topological order: sources produce
        # their first batch, and operators over pre-filled streams/channels
        # drain them even though no push will ever signal them.
        for operator in order:
            operator.signal()

    # -- execution --------------------------------------------------------------
    def step(self) -> bool:
        """Drain the ready queue once; return True if any operator progressed.

        One ``step`` processes every signal-driven wake-up transitively (a
        push cascades through the whole downstream chain), but an operator
        that *reschedules itself* (a Source with supplier data left) is
        deferred to the next ``step``.  That bounds the work -- and, for a
        distributed deployment, the channel buffering -- of one step to one
        source batch plus its full propagation, instead of running sources to
        exhaustion while downstream instances wait.
        """
        self._start()
        progress = False
        ready = self._ready
        rescheduled = []
        tracer = self.tracer
        self._draining = True
        try:
            while ready:
                if self.wakeups >= self.max_passes:
                    raise SchedulingError(
                        f"query {self.query.name!r} did not finish within "
                        f"{self.max_passes} wake-ups"
                    )
                operator = ready.popleft()
                operator._queued = False
                operator.work_calls += 1
                if tracer is None:
                    if operator.work():
                        progress = True
                else:
                    started = tracer.clock()
                    worked = operator.work()
                    tracer.record(
                        "operator.work", operator.name, started, node=self.trace_node
                    )
                    if worked:
                        progress = True
                self.wakeups += 1
                if (
                    self.pass_callback is not None
                    and self.wakeups % self.callback_every == 0
                ):
                    self.pass_callback(self.wakeups)
                if operator.finished:
                    self._unfinished.discard(operator)
                elif operator.self_reschedule:
                    rescheduled.append(operator)
        finally:
            self._draining = False
        for operator in rescheduled:
            operator.signal()
        return progress

    def run(self) -> int:
        """Run until quiescence; return the number of operator wake-ups."""
        self._start()
        while self._ready:
            self.step()
        if self._unfinished:
            # The ready queue is empty but the query is not finished: the
            # graph is stuck (e.g. a Receive waiting on a channel that is
            # fed by another instance).  The caller (DistributedRuntime)
            # handles that case; in a standalone run it is an error.
            raise SchedulingError(
                f"query {self.query.name!r} made no progress before completion"
            )
        return self.wakeups

    # -- introspection ------------------------------------------------------------
    @property
    def passes(self) -> int:
        """Alias for :attr:`wakeups` (the polling scheduler's pass count)."""
        return self.wakeups

    @property
    def has_ready_work(self) -> bool:
        """True when at least one operator is queued to run."""
        return bool(self._ready)

    @property
    def finished(self) -> bool:
        """True once every operator of the query has finished."""
        if self._started:
            return not self._unfinished
        return all(op.finished for op in self.query.operators)


class PollingScheduler:
    """The original whole-graph polling scheduler (behavioural oracle).

    Runs every operator of the query cooperatively in topological order,
    repeatedly, until the query is quiescent (all sources exhausted, all
    streams drained, all windows flushed).  Each ``work_per_tuple`` call is
    the seed's one-``peek``/``pop``-per-tuple loop, so this scheduler
    reproduces both the seed's *behaviour* and its *cost model* (whole-graph
    passes, per-tuple dataplane, full quiescence scan per no-progress check).
    Kept so the equivalence tests and the performance report can compare the
    event-driven :class:`Scheduler` against the seed.
    """

    def __init__(
        self,
        query: Query,
        max_passes: int = 10_000_000,
        pass_callback: Optional[Callable[[int], None]] = None,
        callback_every: int = 16,
    ) -> None:
        self.query = query
        self.max_passes = max_passes
        self.pass_callback = pass_callback
        self.callback_every = max(1, callback_every)
        self.passes = 0
        #: telemetry span tracer (None = disabled), same contract as
        #: :class:`Scheduler` so both cores emit comparable wake-up spans.
        self.tracer = None
        self.trace_node = query.name
        self._order: Optional[List[Operator]] = None

    def _operators(self) -> List[Operator]:
        if self._order is None:
            self.query.validate()
            self._order = self.query.topological_order()
        return self._order

    def step(self) -> bool:
        """Run one pass over every operator; return True if anything progressed."""
        progress = False
        tracer = self.tracer
        for operator in self._operators():
            operator.work_calls += 1
            if tracer is None:
                if operator.work_per_tuple():
                    progress = True
            else:
                started = tracer.clock()
                worked = operator.work_per_tuple()
                tracer.record(
                    "operator.work", operator.name, started, node=self.trace_node
                )
                if worked:
                    progress = True
        self.passes += 1
        if self.pass_callback is not None and self.passes % self.callback_every == 0:
            self.pass_callback(self.passes)
        return progress

    def run(self) -> int:
        """Run until quiescence; return the number of passes executed."""
        while self.passes < self.max_passes:
            progress = self.step()
            if not progress and self._quiescent():
                return self.passes
            if not progress:
                raise SchedulingError(
                    f"query {self.query.name!r} made no progress before completion"
                )
        raise SchedulingError(
            f"query {self.query.name!r} did not finish within {self.max_passes} passes"
        )

    def _quiescent(self) -> bool:
        return all(op.finished for op in self._operators())

    @property
    def wakeups(self) -> int:
        """Operator ``work`` calls executed (passes x operator count)."""
        return self.passes * len(self._operators())

    @property
    def finished(self) -> bool:
        """True once every operator of the query has finished."""
        return self._quiescent()
