"""Channels: the transport between Send and Receive operators.

A :class:`Channel` models the link between two SPE instances (in the paper:
two processes on distinct Odroid boards connected by a 100 Mbps switch).  It
carries *serialised* tuples only, tracks the producer watermark, and records
simple traffic statistics (tuples and bytes transferred) that the experiment
harness uses to reason about network load.

Like :class:`~repro.spe.streams.Stream`, a channel participates in readiness
propagation: the Receive operator reading it registers itself as
``consumer``, and every producer-side mutation (:meth:`send`,
:meth:`send_many`, :meth:`advance_watermark`, :meth:`close`) signals it.
That is what lets the :class:`~repro.spe.runtime.DistributedRuntime` wake
exactly the instance whose channel received data instead of round-robin
polling every instance.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.spe.errors import ChannelError
from repro.spe.tuples import FINAL_WATERMARK


class Channel:
    """A FIFO of serialised tuples between two SPE instances."""

    __slots__ = (
        "name",
        "_queue",
        "_watermark",
        "_closed",
        "tuples_sent",
        "bytes_sent",
        "consumer",
    )

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._queue: Deque[str] = deque()
        self._watermark: float = float("-inf")
        self._closed = False
        self.tuples_sent = 0
        self.bytes_sent = 0
        #: the Receive operator reading this channel (registered by
        #: ``ReceiveOperator``); signalled on every producer-side mutation.
        self.consumer = None

    # -- readiness ---------------------------------------------------------
    def _wake(self) -> None:
        consumer = self.consumer
        if consumer is not None:
            consumer.signal()

    # -- producer side -----------------------------------------------------
    def send(self, payload: str) -> None:
        """Enqueue one serialised tuple."""
        if self._closed:
            raise ChannelError(f"channel {self.name!r} is closed")
        self._queue.append(payload)
        self.tuples_sent += 1
        self.bytes_sent += len(payload)
        self._wake()

    def send_many(self, payloads: Iterable[str]) -> None:
        """Enqueue a batch of serialised tuples with one consumer wake-up."""
        if self._closed:
            raise ChannelError(f"channel {self.name!r} is closed")
        batch = payloads if isinstance(payloads, (list, tuple)) else list(payloads)
        if not batch:
            return
        self._queue.extend(batch)
        self.tuples_sent += len(batch)
        self.bytes_sent += sum(len(payload) for payload in batch)
        self._wake()

    def advance_watermark(self, ts: float) -> None:
        """Advance the producer watermark (monotone)."""
        if ts > self._watermark:
            self._watermark = ts
            self._wake()

    def close(self) -> None:
        """Signal that no further tuple will be sent."""
        self._closed = True
        self._watermark = FINAL_WATERMARK
        self._wake()

    # -- consumer side -----------------------------------------------------
    def receive(self) -> Optional[str]:
        """Dequeue one serialised tuple, or None when the channel is empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def receive_all(self) -> List[str]:
        """Dequeue every available serialised tuple.

        Drains with atomic ``popleft`` calls rather than snapshot+clear:
        under the :class:`~repro.spe.threaded.ThreadedRuntime` the producer
        appends from another thread, and a payload sent between a snapshot
        and a clear would be lost forever.
        """
        queue = self._queue
        items: List[str] = []
        while queue:
            items.append(queue.popleft())
        return items

    # -- state ----------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Largest timestamp below which no further tuple will be sent."""
        return self._watermark

    @property
    def closed(self) -> bool:
        """True once the producer called :meth:`close`."""
        return self._closed

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(name={self.name!r}, queued={len(self._queue)}, "
            f"sent={self.tuples_sent}, bytes={self.bytes_sent})"
        )
