"""Channels: the transport between Send and Receive operators.

A :class:`Channel` models the link between two SPE instances (in the paper:
two processes on distinct Odroid boards connected by a 100 Mbps switch).  It
carries *serialised* tuples only, tracks the producer watermark, and records
simple traffic statistics (tuples and bytes transferred) that the experiment
harness uses to reason about network load.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.spe.errors import ChannelError
from repro.spe.tuples import FINAL_WATERMARK


class Channel:
    """A FIFO of serialised tuples between two SPE instances."""

    __slots__ = (
        "name",
        "_queue",
        "_watermark",
        "_closed",
        "tuples_sent",
        "bytes_sent",
    )

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._queue: Deque[str] = deque()
        self._watermark: float = float("-inf")
        self._closed = False
        self.tuples_sent = 0
        self.bytes_sent = 0

    # -- producer side -----------------------------------------------------
    def send(self, payload: str) -> None:
        """Enqueue one serialised tuple."""
        if self._closed:
            raise ChannelError(f"channel {self.name!r} is closed")
        self._queue.append(payload)
        self.tuples_sent += 1
        self.bytes_sent += len(payload)

    def advance_watermark(self, ts: float) -> None:
        """Advance the producer watermark (monotone)."""
        if ts > self._watermark:
            self._watermark = ts

    def close(self) -> None:
        """Signal that no further tuple will be sent."""
        self._closed = True
        self._watermark = FINAL_WATERMARK

    # -- consumer side -----------------------------------------------------
    def receive(self) -> Optional[str]:
        """Dequeue one serialised tuple, or None when the channel is empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def receive_all(self) -> List[str]:
        """Dequeue every available serialised tuple."""
        items = list(self._queue)
        self._queue.clear()
        return items

    # -- state ----------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Largest timestamp below which no further tuple will be sent."""
        return self._watermark

    @property
    def closed(self) -> bool:
        """True once the producer called :meth:`close`."""
        return self._closed

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(name={self.name!r}, queued={len(self._queue)}, "
            f"sent={self.tuples_sent}, bytes={self.bytes_sent})"
        )
