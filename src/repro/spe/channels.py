"""Channels: the transport between Send and Receive operators.

A :class:`Channel` models the link between two SPE instances (in the paper:
two processes on distinct Odroid boards connected by a 100 Mbps switch).  It
carries *serialised* tuples only, tracks the producer watermark, and records
simple traffic statistics (tuples and bytes transferred) that the experiment
harness uses to reason about network load.

The queueing mechanics live behind a :class:`ChannelTransport`:

* :class:`InMemoryTransport` (the default) is a plain deque shared by both
  sides -- the cooperative :class:`~repro.spe.scheduler.Scheduler`, the
  :class:`~repro.spe.runtime.DistributedRuntime` and the
  :class:`~repro.spe.threaded.ThreadedRuntime` all use it.
* :class:`ProcessTransport` carries the same serialised payloads over a
  :mod:`multiprocessing` pipe, so the producer and the consumer can live in
  *different OS processes* (the :class:`~repro.spe.multiprocess.MultiprocessRuntime`).
  Watermark advances and the close marker travel as explicit control
  messages; each side of the fork keeps its own local view of the channel
  state, updated when the consumer drains the pipe.

Like :class:`~repro.spe.streams.Stream`, a channel participates in readiness
propagation: the Receive operator reading it registers itself as
``consumer``, and every producer-side mutation (:meth:`send`,
:meth:`send_many`, :meth:`advance_watermark`, :meth:`close`) signals it.
That is what lets the :class:`~repro.spe.runtime.DistributedRuntime` wake
exactly the instance whose channel received data instead of round-robin
polling every instance.  Cross-process transports skip that in-memory hook:
there the pipe itself is the wake-up signal (the consumer's worker loop
waits on the pipe's read end).

Producer-side mutations take a per-channel lock: the traffic counters and
the watermark's check-then-set are read-modify-writes, and under the
threaded runtime a :class:`~repro.spe.metrics.MetricsSnapshot` may be taken
from another thread while a producer is mid-update.  :meth:`counters`
returns a consistent ``(tuples_sent, bytes_sent)`` pair under that lock.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple, Union

from repro.spe.errors import ChannelError
from repro.spe.tuples import FINAL_WATERMARK

#: one wire payload: a legacy JSON document (str) or a binary batch blob.
Payload = Union[str, bytes]


class ChannelTransport:
    """The producer-to-consumer path of one :class:`Channel`.

    The producer side calls :meth:`send` / :meth:`send_many` /
    :meth:`advance_watermark` / :meth:`close`; the consumer side calls
    :meth:`receive` / :meth:`receive_all` and reads :attr:`watermark`,
    :attr:`closed` and ``len()``.  ``local`` tells the owning channel
    whether both sides share this very object (so the in-memory
    consumer-signalling hook works) or live in different processes.
    """

    #: True when producer and consumer share this object in one process.
    local = True

    # -- producer side -----------------------------------------------------
    def send(self, payload: Payload) -> None:
        raise NotImplementedError

    def send_many(self, payloads: Sequence[Payload]) -> None:
        raise NotImplementedError

    def advance_watermark(self, ts: float) -> bool:
        """Advance the watermark (monotone); return True when it moved."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- consumer side -----------------------------------------------------
    def receive(self) -> Optional[Payload]:
        raise NotImplementedError

    def receive_all(self) -> List[Payload]:
        raise NotImplementedError

    @property
    def watermark(self) -> float:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryTransport(ChannelTransport):
    """The default transport: a deque shared by producer and consumer."""

    local = True

    __slots__ = ("_queue", "_watermark", "_closed")

    def __init__(self) -> None:
        self._queue: Deque[Payload] = deque()
        self._watermark: float = float("-inf")
        self._closed = False

    # -- producer side -----------------------------------------------------
    def send(self, payload: Payload) -> None:
        self._queue.append(payload)

    def send_many(self, payloads: Sequence[Payload]) -> None:
        self._queue.extend(payloads)

    def advance_watermark(self, ts: float) -> bool:
        if ts > self._watermark:
            self._watermark = ts
            return True
        return False

    def close(self) -> None:
        self._closed = True
        self._watermark = FINAL_WATERMARK

    # -- consumer side -----------------------------------------------------
    def receive(self) -> Optional[Payload]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def receive_all(self) -> List[Payload]:
        # Drain with atomic ``popleft`` calls rather than snapshot+clear:
        # under the ThreadedRuntime the producer appends from another
        # thread, and a payload sent between a snapshot and a clear would
        # be lost forever.
        queue = self._queue
        items: List[Payload] = []
        while queue:
            items.append(queue.popleft())
        return items

    @property
    def watermark(self) -> float:
        return self._watermark

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._queue)


#: message tags of the :class:`ProcessTransport` wire protocol.
_MSG_DATA = "d"
_MSG_WATERMARK = "w"
_MSG_CLOSE = "c"


class ProcessTransport(ChannelTransport):
    """A :mod:`multiprocessing` pipe carrying the serialised payloads.

    Built *before* the worker processes are forked, so both sides inherit
    the same pipe.  After the fork the two copies of this object diverge:
    the producer process uses the write end (and its local ``_watermark`` /
    ``_closed`` record what it already announced), the consumer process
    drains the read end into a local buffer and updates its own view from
    the control messages.  Data messages carry whole batches, so one
    ``send_many`` is one pipe write.

    The consumer-side state (:attr:`watermark`, :attr:`closed`, ``len()``)
    is only refreshed by :meth:`receive` / :meth:`receive_all` -- never by
    the property reads themselves.  That keeps reads side-effect free: a
    coordinator holding a third copy of the object can inspect it without
    stealing messages from the real consumer.  The Receive operator always
    drains before checking state, so it observes a consistent snapshot.
    """

    local = False

    def __init__(self, context: Optional[multiprocessing.context.BaseContext] = None) -> None:
        ctx = context if context is not None else multiprocessing.get_context()
        self._reader, self._writer = ctx.Pipe(duplex=False)
        self._buffer: Deque[Payload] = deque()
        self._watermark: float = float("-inf")
        self._closed = False

    @property
    def reader(self):
        """The pipe's read end (waitable via ``multiprocessing.connection.wait``)."""
        return self._reader

    # -- producer side -----------------------------------------------------
    def send(self, payload: Payload) -> None:
        self._writer.send((_MSG_DATA, (payload,)))

    def send_many(self, payloads: Sequence[Payload]) -> None:
        self._writer.send((_MSG_DATA, tuple(payloads)))

    def advance_watermark(self, ts: float) -> bool:
        if ts > self._watermark:
            self._watermark = ts
            self._writer.send((_MSG_WATERMARK, ts))
            return True
        return False

    def close(self) -> None:
        self._closed = True
        self._watermark = FINAL_WATERMARK
        self._writer.send((_MSG_CLOSE, None))

    # -- consumer side -----------------------------------------------------
    def _drain(self) -> None:
        reader = self._reader
        buffer = self._buffer
        while reader.poll():
            tag, body = reader.recv()
            if tag == _MSG_DATA:
                buffer.extend(body)
            elif tag == _MSG_WATERMARK:
                if body > self._watermark:
                    self._watermark = body
            else:  # _MSG_CLOSE
                self._closed = True
                self._watermark = FINAL_WATERMARK

    def receive(self) -> Optional[Payload]:
        if not self._buffer:
            self._drain()
        if not self._buffer:
            return None
        return self._buffer.popleft()

    def receive_all(self) -> List[Payload]:
        self._drain()
        items = list(self._buffer)
        self._buffer.clear()
        return items

    @property
    def watermark(self) -> float:
        return self._watermark

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._buffer)


class Channel:
    """A FIFO of serialised tuple payloads between two SPE instances.

    A payload is either one legacy JSON document (``str``, ``codec="json"``)
    or one :mod:`repro.spe.codec` binary batch blob (``bytes``,
    ``codec="binary"``, the default).  ``codec`` only records which format
    the Send/Receive operators at the two ends should speak -- the channel
    itself carries payloads opaquely, and :meth:`send_block` lets a batched
    producer account N tuples for one blob.
    """

    __slots__ = (
        "name",
        "_transport",
        "_lock",
        "tuples_sent",
        "bytes_sent",
        "consumer",
        "codec",
        "tracer",
    )

    def __init__(
        self,
        name: str = "",
        transport: Optional[ChannelTransport] = None,
        codec: str = "binary",
    ) -> None:
        self.name = name
        self._transport = transport if transport is not None else InMemoryTransport()
        self._lock = threading.Lock()
        self.tuples_sent = 0
        self.bytes_sent = 0
        #: wire format the Send/Receive pair on this channel speaks
        #: ("binary" or "json"); see :mod:`repro.spe.codec`.
        self.codec = codec
        #: the Receive operator reading this channel (registered by
        #: ``ReceiveOperator``); signalled on every producer-side mutation
        #: when the transport is local (cross-process transports wake the
        #: consumer through the pipe instead).
        self.consumer = None
        #: telemetry span tracer (None = disabled; installed by the obs
        #: layer).  Deliberately a per-channel slot, not a module global:
        #: in-process loopback cluster workers share the interpreter and a
        #: global would cross-contaminate their traces.
        self.tracer = None

    @property
    def transport(self) -> ChannelTransport:
        """The transport carrying this channel's payloads."""
        return self._transport

    # -- readiness ---------------------------------------------------------
    def _wake(self) -> None:
        if not self._transport.local:
            return
        consumer = self.consumer
        if consumer is not None:
            consumer.signal()

    # -- producer side -----------------------------------------------------
    def send(self, payload: Payload) -> None:
        """Enqueue one serialised tuple."""
        with self._lock:
            if self._transport.closed:
                raise ChannelError(f"channel {self.name!r} is closed")
            self._transport.send(payload)
            self.tuples_sent += 1
            self.bytes_sent += len(payload)
        if self.tracer is not None:
            self.tracer.event("channel.send", self.name, count=1)
        self._wake()

    def send_many(self, payloads: Iterable[Payload]) -> None:
        """Enqueue a batch of serialised tuples with one consumer wake-up."""
        batch = payloads if isinstance(payloads, (list, tuple)) else list(payloads)
        if not batch:
            return
        with self._lock:
            if self._transport.closed:
                raise ChannelError(f"channel {self.name!r} is closed")
            self._transport.send_many(batch)
            self.tuples_sent += len(batch)
            self.bytes_sent += sum(len(payload) for payload in batch)
        if self.tracer is not None:
            self.tracer.event("channel.send", self.name, count=len(batch))
        self._wake()

    def send_block(self, payload, count: int) -> None:
        """Enqueue one payload carrying ``count`` tuples (a batch blob).

        The traffic counters account the batched tuples individually --
        ``tuples_sent`` stays a tuple count across codecs -- while
        ``bytes_sent`` grows by the blob's wire size.
        """
        with self._lock:
            if self._transport.closed:
                raise ChannelError(f"channel {self.name!r} is closed")
            self._transport.send(payload)
            self.tuples_sent += count
            self.bytes_sent += len(payload)
        if self.tracer is not None:
            self.tracer.event("channel.send", self.name, count=count)
        self._wake()

    def advance_watermark(self, ts: float) -> None:
        """Advance the producer watermark (monotone)."""
        with self._lock:
            advanced = self._transport.advance_watermark(ts)
        if advanced:
            if self.tracer is not None:
                self.tracer.event("channel.watermark", self.name)
            self._wake()

    def close(self) -> None:
        """Signal that no further tuple will be sent."""
        with self._lock:
            self._transport.close()
        if self.tracer is not None:
            self.tracer.event("channel.close", self.name)
        self._wake()

    # -- consumer side -----------------------------------------------------
    def receive(self) -> Optional[Payload]:
        """Dequeue one serialised tuple, or None when the channel is empty."""
        payload = self._transport.receive()
        if payload is not None and self.tracer is not None:
            self.tracer.event("channel.recv", self.name, count=1)
        return payload

    def receive_all(self) -> List[Payload]:
        """Dequeue every available serialised tuple."""
        payloads = self._transport.receive_all()
        if payloads and self.tracer is not None:
            self.tracer.event("channel.recv", self.name, count=len(payloads))
        return payloads

    # -- state ----------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """Largest timestamp below which no further tuple will be sent."""
        return self._transport.watermark

    @property
    def closed(self) -> bool:
        """True once the producer called :meth:`close`."""
        return self._transport.closed

    def counters(self) -> Tuple[int, int]:
        """A consistent ``(tuples_sent, bytes_sent)`` snapshot."""
        with self._lock:
            return self.tuples_sent, self.bytes_sent

    def __len__(self) -> int:
        return len(self._transport)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(name={self.name!r}, queued={len(self._transport)}, "
            f"sent={self.tuples_sent}, bytes={self.bytes_sent})"
        )
