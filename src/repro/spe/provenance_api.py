"""Interface between the SPE operators and a provenance technique.

The SPE substrate itself is provenance-agnostic: every operator calls into a
:class:`ProvenanceManager` whenever it creates, forwards or serialises a
tuple.  The default manager (:class:`NoProvenance`) does nothing, which is the
"NP" configuration of the paper's evaluation.  GeneaLog
(:class:`repro.core.instrumentation.GeneaLogProvenance`) and the Ariadne-style
baseline (:class:`repro.core.baseline.AriadneBaselineProvenance`) implement
the same interface, which is how the evaluation switches between NP, GL and BL
without touching the queries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.spe.tuples import StreamTuple


class ProvenanceManager:
    """Hooks invoked by instrumented operators.

    Every hook is a no-op in the base class, which therefore doubles as the
    "no provenance" (NP) configuration.
    """

    #: short identifier used in experiment reports ("NP", "GL", "BL").
    name = "NP"

    #: True when every creation hook is a no-op (the NP configuration).
    #: Hot operator loops consult this once per batch to skip the per-tuple
    #: hook calls entirely; instrumenting managers must leave it False.
    is_noop = False

    # -- tuple creation hooks (section 4.1 of the paper) -------------------
    def on_source_output(self, tup: StreamTuple) -> None:
        """A Source created ``tup``."""

    def on_map_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        """A Map created ``out_tuple`` while processing ``in_tuple``."""

    def on_multiplex_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        """A Multiplex created copy ``out_tuple`` of ``in_tuple``."""

    def on_join_output(
        self, out_tuple: StreamTuple, newer: StreamTuple, older: StreamTuple
    ) -> None:
        """A Join created ``out_tuple`` from the pair ``(newer, older)``."""

    def on_aggregate_output(
        self,
        out_tuple: StreamTuple,
        window: Sequence[StreamTuple],
        contributors: Optional[Sequence[StreamTuple]] = None,
    ) -> None:
        """An Aggregate created ``out_tuple`` from ``window`` (earliest first).

        ``contributors`` is the optional subset of the window that actually
        determined the output (e.g. the single maximum tuple of a ``max``
        aggregate).  It enables the window-provenance optimisation sketched
        in the paper's future work (section 9, item i); when omitted, every
        window tuple is considered contributing, as in Definition 3.1.
        """

    # -- process boundary hooks (section 6 of the paper) --------------------
    def on_send(self, tup: StreamTuple) -> Dict[str, Any]:
        """A Send operator is about to serialise ``tup``.

        Returns a JSON-like dictionary of provenance fields that must survive
        the process boundary (GeneaLog: the tuple type and unique id; the
        baseline: the annotation list).
        """
        return {}

    def on_receive(self, tup: StreamTuple, payload: Dict[str, Any]) -> None:
        """A Receive operator reconstructed ``tup``; ``payload`` is what
        :meth:`on_send` returned on the producing side."""

    # -- provenance retrieval ------------------------------------------------
    def tuple_id(self, tup: StreamTuple) -> Any:
        """Unique id of ``tup`` if the technique assigns one, else ``None``."""
        return None

    def unfold(self, tup: StreamTuple) -> List[StreamTuple]:
        """Return the originating tuples of ``tup`` (Definition 4.1).

        The NP manager has no provenance information and returns an empty
        list.
        """
        return []

    # -- accounting ----------------------------------------------------------
    def retained_items(self) -> int:
        """Number of tuples the technique itself retains (e.g. BL's store)."""
        return 0

    def retained_bytes(self) -> int:
        """Approximate bytes retained by the technique itself."""
        return 0


class NoProvenance(ProvenanceManager):
    """Explicit alias for the no-op manager (the NP configuration)."""

    name = "NP"
    is_noop = True
