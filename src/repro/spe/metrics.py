"""Measurement utilities shared by the experiment harness and benchmarks.

The evaluation of the paper reports, per query and provenance technique:

* **throughput** -- source tuples processed per second,
* **latency** -- time between the production of a sink tuple and the arrival
  of the latest source tuple contributing to it,
* **memory footprint** -- average and maximum memory used by the process,
* **traversal time** -- time spent walking the contribution graph per sink
  tuple.

This module provides small, dependency-free helpers to collect those numbers:
summary statistics with confidence intervals, a tracemalloc-based memory
sampler, and a container bundling the per-run results.
"""

from __future__ import annotations

import math
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already *sorted* sample.

    ``q`` is a fraction in [0, 1].  Empty input yields 0.0 so callers can
    report it without special-casing.
    """
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass
class StatSummary:
    """Mean / min / max / stdev / percentiles / 95% CI half-width of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float
    ci95: float
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @classmethod
    def of(cls, samples: Sequence[float]) -> "StatSummary":
        """Summarise ``samples`` (empty input yields an all-zero summary)."""
        values = list(samples)
        if not values:
            return cls(count=0, mean=0.0, minimum=0.0, maximum=0.0, stdev=0.0, ci95=0.0)
        count = len(values)
        mean = sum(values) / count
        if count > 1:
            variance = sum((v - mean) ** 2 for v in values) / (count - 1)
            stdev = math.sqrt(variance)
            ci95 = 1.96 * stdev / math.sqrt(count)
        else:
            stdev = 0.0
            ci95 = 0.0
        ordered = sorted(values)
        return cls(
            count=count,
            mean=mean,
            minimum=ordered[0],
            maximum=ordered[-1],
            stdev=stdev,
            ci95=ci95,
            p50=percentile_of_sorted(ordered, 0.50),
            p95=percentile_of_sorted(ordered, 0.95),
            p99=percentile_of_sorted(ordered, 0.99),
        )


class MemorySampler:
    """Samples process heap usage (via :mod:`tracemalloc`) during a run.

    The paper reports the average and maximum memory of the process running a
    query.  Here we sample the traced Python heap at regular scheduler passes,
    which captures exactly the part that differs between NP, GL and BL: the
    tuples, windows, annotations and stores the techniques retain.
    """

    def __init__(self) -> None:
        self.samples_bytes: List[int] = []
        self.peak_bytes: int = 0
        self._started_here = False

    def start(self) -> None:
        """Begin tracing allocations (no-op when tracemalloc already runs)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()

    def sample(self) -> int:
        """Record one sample of the currently allocated bytes."""
        current, peak = tracemalloc.get_traced_memory()
        self.samples_bytes.append(current)
        self.peak_bytes = max(self.peak_bytes, peak)
        return current

    def stop(self) -> None:
        """Stop tracing (only if this sampler started it)."""
        current, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = max(self.peak_bytes, peak)
        if self._started_here:
            tracemalloc.stop()
            self._started_here = False

    @property
    def average_bytes(self) -> float:
        """Mean of the collected samples (0 when nothing was sampled)."""
        if not self.samples_bytes:
            return 0.0
        return sum(self.samples_bytes) / len(self.samples_bytes)

    @property
    def max_bytes(self) -> int:
        """Peak traced allocation observed during the run."""
        return self.peak_bytes


@dataclass
class RunMetrics:
    """Metrics collected for one execution of a query under one technique."""

    query: str
    technique: str
    deployment: str
    source_tuples: int = 0
    sink_tuples: int = 0
    wall_time_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    memory_samples_bytes: List[int] = field(default_factory=list)
    memory_peak_bytes: int = 0
    traversal_times_s: List[float] = field(default_factory=list)
    per_instance_traversal_s: Dict[str, List[float]] = field(default_factory=dict)
    provenance_sizes: List[int] = field(default_factory=list)
    bytes_transferred: int = 0
    tuples_transferred: int = 0

    @property
    def throughput_tps(self) -> float:
        """Source tuples processed per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.source_tuples / self.wall_time_s

    @property
    def latency(self) -> StatSummary:
        """Summary of per-sink-tuple latency (seconds)."""
        return StatSummary.of(self.latencies_s)

    @property
    def memory_average_mb(self) -> float:
        """Average sampled memory in megabytes."""
        if not self.memory_samples_bytes:
            return 0.0
        return sum(self.memory_samples_bytes) / len(self.memory_samples_bytes) / 1e6

    @property
    def memory_max_mb(self) -> float:
        """Peak memory in megabytes."""
        return self.memory_peak_bytes / 1e6

    @property
    def traversal(self) -> StatSummary:
        """Summary of per-sink-tuple contribution-graph traversal time (seconds)."""
        return StatSummary.of(self.traversal_times_s)

    @property
    def average_provenance_size(self) -> float:
        """Average number of source tuples contributing to a sink tuple."""
        if not self.provenance_sizes:
            return 0.0
        return sum(self.provenance_sizes) / len(self.provenance_sizes)


@dataclass(frozen=True)
class OperatorCounters:
    """One operator's execution counters at snapshot time."""

    name: str
    #: SPE instance hosting the operator (None for intra-process queries).
    instance: Optional[str]
    #: operator class name (``FilterOperator``, ``SUOperator``, ...).
    kind: str
    #: scheduler ``work`` invocations.
    work_calls: int
    tuples_in: int
    tuples_out: int


@dataclass(frozen=True)
class ChannelCounters:
    """One inter-instance channel's traffic counters at snapshot time."""

    name: str
    tuples_sent: int
    bytes_sent: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """A consolidated, read-only view of a run's execution counters.

    Built by :meth:`repro.api.pipeline.PipelineResult.metrics`, so callers
    (benchmarks, dashboards, tests) read one plain structure instead of
    reaching into runtime internals (operator objects, channel objects).
    Operators are keyed by their qualified name (``instance/operator`` on
    distributed deployments, the bare operator name intra-process).
    """

    operators: Dict[str, OperatorCounters]
    channels: Dict[str, ChannelCounters]

    @property
    def total_work_calls(self) -> int:
        """Scheduler ``work`` invocations summed over every operator."""
        return sum(op.work_calls for op in self.operators.values())

    @property
    def total_tuples_sent(self) -> int:
        """Tuples that crossed any inter-instance channel."""
        return sum(ch.tuples_sent for ch in self.channels.values())

    @property
    def total_bytes_sent(self) -> int:
        """Bytes that crossed any inter-instance channel."""
        return sum(ch.bytes_sent for ch in self.channels.values())

    def operators_named(self, prefix: str) -> Dict[str, OperatorCounters]:
        """The operators whose (unqualified) name starts with ``prefix``."""
        return {
            key: op
            for key, op in self.operators.items()
            if op.name.startswith(prefix)
        }

    def to_document(self) -> Dict[str, Dict]:
        """JSON-ready representation (used by the benchmark reports)."""
        return {
            "operators": {
                key: {
                    "kind": op.kind,
                    "work_calls": op.work_calls,
                    "tuples_in": op.tuples_in,
                    "tuples_out": op.tuples_out,
                }
                for key, op in self.operators.items()
            },
            "channels": {
                key: {"tuples_sent": ch.tuples_sent, "bytes_sent": ch.bytes_sent}
                for key, ch in self.channels.items()
            },
        }


def snapshot_operators(
    operators, instance: Optional[str] = None
) -> Dict[str, OperatorCounters]:
    """Snapshot an iterable of operators into qualified-name counters."""
    snapshot: Dict[str, OperatorCounters] = {}
    for operator in operators:
        qualified = f"{instance}/{operator.name}" if instance else operator.name
        snapshot[qualified] = OperatorCounters(
            name=operator.name,
            instance=instance,
            kind=type(operator).__name__,
            work_calls=operator.work_calls,
            tuples_in=operator.tuples_in,
            tuples_out=operator.tuples_out,
        )
    return snapshot


def merge_metrics(runs: Sequence[RunMetrics]) -> Optional[RunMetrics]:
    """Merge repeated runs of the same experiment cell into one record.

    Throughput-related counters are averaged; sample lists are concatenated.
    """
    if not runs:
        return None
    first = runs[0]
    merged = RunMetrics(query=first.query, technique=first.technique, deployment=first.deployment)
    merged.source_tuples = int(sum(r.source_tuples for r in runs) / len(runs))
    merged.sink_tuples = int(sum(r.sink_tuples for r in runs) / len(runs))
    merged.wall_time_s = sum(r.wall_time_s for r in runs) / len(runs)
    merged.memory_peak_bytes = max(r.memory_peak_bytes for r in runs)
    merged.bytes_transferred = int(sum(r.bytes_transferred for r in runs) / len(runs))
    merged.tuples_transferred = int(sum(r.tuples_transferred for r in runs) / len(runs))
    for run in runs:
        merged.latencies_s.extend(run.latencies_s)
        merged.memory_samples_bytes.extend(run.memory_samples_bytes)
        merged.traversal_times_s.extend(run.traversal_times_s)
        merged.provenance_sizes.extend(run.provenance_sizes)
        for instance, samples in run.per_instance_traversal_s.items():
            merged.per_instance_traversal_s.setdefault(instance, []).extend(samples)
    return merged
