"""True multi-process execution: one OS process per SPE instance.

The paper runs each SPE instance as a separate process (Odroid boards linked
by a switch); the cooperative :class:`~repro.spe.runtime.DistributedRuntime`
and the :class:`~repro.spe.threaded.ThreadedRuntime` only *simulate* that
inside one Python process, so the GIL erases the parallelism the
architecture promises.  :class:`MultiprocessRuntime` closes that gap: every
:class:`~repro.spe.instance.SPEInstance` is driven by the event-driven
:class:`~repro.spe.scheduler.Scheduler` inside its own child process, and
the instances communicate exclusively through channels backed by
:class:`~repro.spe.channels.ProcessTransport` pipes carrying the
already-serialised JSON payloads (data tuples, watermark advances, close
markers -- and, under GL/BL, the cross-boundary provenance payloads that
are deserialised and re-ingested on the provenance instance's process).

Because each instance still consumes its inputs in deterministic
timestamp-merged order, the results are identical to the cooperative
execution -- the multiprocess equivalence suite asserts byte-identical sink
outputs and id-canonicalised provenance against ``execution="event"``.

**Result shipping.**  Sink tuples, per-tuple latencies, per-operator and
per-channel counters, contribution-graph traversal samples and the sink
observer streams all materialise in the child processes; each worker ships
them back to the coordinator over a result pipe when its instance reaches
quiescence.  The coordinator then replays every sink's observed stream into
the *coordinator-side* sink objects -- invoking their callbacks (e.g. the
:class:`~repro.core.provenance.ProvenanceCollector`) and their attached
:class:`~repro.provstore.tap.ProvenanceTap` observers (e.g. the
:class:`~repro.provstore.tap.LedgerTap` feeding a provenance store) -- and
copies the counters onto the coordinator-side operators and channels.  A
:class:`~repro.api.pipeline.PipelineResult` is therefore indistinguishable
from a cooperative run, except that sink callbacks and ledger ingestion
happen *after* the processes finish rather than streaming during the run.

**Start method.**  Workers are forked, not spawned from scratch: operator
logic (map functions, predicates, source suppliers) is arbitrary Python --
closures and generators included -- and need not be picklable.  ``fork`` is
required; platforms without it (Windows) cannot use this runtime.

**Failure handling.**  A worker that raises ships the error (with its
traceback) back to the coordinator, which immediately signals every other
worker to stop, joins them, and re-raises the *original* failure first --
the same contract the ThreadedRuntime honours -- instead of letting healthy
workers park until the timeout and masking the root cause.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from multiprocessing import connection
from typing import Dict, List, Optional, Tuple

from repro.spe.channels import ProcessTransport
from repro.spe.errors import SchedulingError
from repro.spe.instance import SPEInstance
from repro.spe.runtime import _RuntimeBase
from repro.spe.scheduler import Scheduler
from repro.spe.shipping import (
    apply_instance_result,
    collect_result,
    prepare_sinks,
    require_unique_channel_names,
)

#: how long an idle worker blocks on its input pipes before re-checking the
#: stop event (a safety net; pipe readiness is the primary wake-up signal).
_WAIT_TIMEOUT_S = 0.05

logger = logging.getLogger(__name__)


def _run_worker(
    instance: SPEInstance,
    stop_event,
    result_conn,
    max_passes: int,
    telemetry_capacity: int = 0,
) -> None:
    """Child-process entry point: drive one instance to quiescence.

    ``telemetry_capacity`` > 0 opts this worker into span recording: the
    forked instance builds its *own* tracer (a forked copy of a
    coordinator-side tracer could never ship its buffer back) and the ring
    rides home inside the result document.
    """
    try:
        taps = prepare_sinks(instance)
        scheduler = Scheduler(instance, max_passes=max_passes)
        if telemetry_capacity > 0:
            from repro.obs.telemetry import enable_worker_telemetry

            enable_worker_telemetry(instance, scheduler, telemetry_capacity)
        waitable = {}
        for receive in instance.receives():
            transport = receive.channel.transport
            if isinstance(transport, ProcessTransport):
                waitable[transport.reader] = receive
        passes = 0
        while not stop_event.is_set():
            progressed = scheduler.step()
            passes += 1
            if scheduler.finished:
                break
            if progressed or scheduler.has_ready_work:
                continue
            if not waitable:
                raise SchedulingError(
                    f"instance {instance.name!r} made no progress before completion"
                )
            # Park on the input pipes: a send / watermark / close from an
            # upstream worker makes the read end ready, and signalling the
            # Receive puts it on this scheduler's ready queue.
            for conn in connection.wait(list(waitable), timeout=_WAIT_TIMEOUT_S):
                waitable[conn].signal()
        if not scheduler.finished:
            result_conn.send(("stopped", {"instance": instance.name}))
            return
        result_conn.send(("ok", collect_result(instance, scheduler, passes, taps)))
    except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
        try:
            result_conn.send(
                (
                    "error",
                    {
                        "instance": instance.name,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            )
        except Exception:  # pragma: no cover - result pipe gone with coordinator
            pass
    finally:
        result_conn.close()


class _Worker:
    """Coordinator-side handle of one child process."""

    __slots__ = ("instance", "process", "result_conn", "outcome")

    def __init__(self, instance: SPEInstance, process, result_conn) -> None:
        self.instance = instance
        self.process = process
        self.result_conn = result_conn
        #: ("ok" | "error" | "stopped" | "died", document) once known.
        self.outcome: Optional[Tuple[str, Dict]] = None


class MultiprocessRuntime(_RuntimeBase):
    """Runs a distributed deployment with one OS process per SPE instance.

    Every inter-instance channel must be backed by a
    :class:`~repro.spe.channels.ProcessTransport` (the
    :class:`~repro.api.pipeline.Pipeline` builds them that way under
    ``execution="process"``).  ``max_rounds`` bounds each worker's scheduler
    wake-ups; ``round_callback`` fires once per collected worker result
    (``callback_every`` is accepted for interface parity but not applied --
    there are never more results than instances).
    """

    def __init__(
        self,
        instances: List[SPEInstance],
        timeout_s: float = 300.0,
        start_method: str = "fork",
        max_rounds: int = 10_000_000,
        round_callback=None,
        callback_every: int = 16,
        telemetry=None,
    ) -> None:
        super().__init__(instances)
        #: the run's :class:`repro.obs.telemetry.Telemetry` (None = off);
        #: workers record their own spans, the coordinator records the
        #: collect/apply phases, and the shipped buffers merge on apply.
        self.telemetry = telemetry
        if start_method not in multiprocessing.get_all_start_methods():
            raise SchedulingError(
                f"multiprocess execution needs the {start_method!r} start "
                "method (operator logic is arbitrary Python and cannot be "
                "pickled for spawn); this platform offers "
                f"{multiprocessing.get_all_start_methods()!r}"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.timeout_s = timeout_s
        self.max_rounds = max_rounds
        self.round_callback = round_callback
        self.callback_every = max(1, callback_every)
        #: instance wake-up ("pass") counts summed over all workers.
        self.rounds = 0
        self._wakeups = 0
        self.workers: List[_Worker] = []
        #: instance name -> shipped result document (after a successful run).
        self.results: Dict[str, Dict] = {}
        require_unique_channel_names(self.channels(), "multiprocess")
        for channel in self.channels():
            if not isinstance(channel.transport, ProcessTransport):
                raise SchedulingError(
                    f"channel {channel.name!r} is not process-backed; build "
                    "the deployment with process transports (e.g. "
                    "Pipeline(execution='process'))"
                )

    # -- execution -------------------------------------------------------------
    def run(self) -> int:
        """Run every instance to quiescence; return the worker pass count."""
        for instance in self.instances:
            instance.validate()
        stop_event = self._ctx.Event()
        self._stop_event = stop_event
        self.workers = []
        telemetry = self.telemetry
        capacity = telemetry.config.capacity if telemetry is not None else 0
        for instance in self.instances:
            recv_conn, send_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_run_worker,
                args=(instance, stop_event, send_conn, self.max_rounds, capacity),
                name=f"spe-{instance.name}",
                daemon=True,
            )
            self.workers.append(_Worker(instance, process, recv_conn))
        logger.debug(
            "starting %d worker process(es): %s",
            len(self.workers),
            [worker.instance.name for worker in self.workers],
        )
        for worker in self.workers:
            worker.process.start()
        tracer = telemetry.tracer if telemetry is not None else None
        try:
            if tracer is None:
                self._collect(stop_event)
            else:
                started = tracer.clock()
                self._collect(stop_event)
                tracer.record("process.collect", "workers", started)
        finally:
            stop_event.set()
            for worker in self.workers:
                worker.process.join(timeout=5.0)
            for worker in self.workers:
                if worker.process.is_alive():  # pragma: no cover - last resort
                    logger.warning(
                        "terminating unresponsive worker %r", worker.instance.name
                    )
                    worker.process.terminate()
                    worker.process.join(timeout=5.0)
        self._raise_on_failure()
        if tracer is None:
            self._apply_results()
        else:
            started = tracer.clock()
            self._apply_results()
            tracer.record("process.apply", "results", started)
        return self.rounds

    def _collect(self, stop_event) -> None:
        """Wait for every worker's result (or death), within the deadline."""
        deadline = time.monotonic() + self.timeout_s
        pending = {worker.result_conn: worker for worker in self.workers}
        sentinels = {worker.process.sentinel: worker for worker in self.workers}
        collected = 0
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            waitable = list(pending) + [
                worker.process.sentinel for worker in pending.values()
            ]
            ready = connection.wait(waitable, timeout=min(remaining, 0.25))
            for item in ready:
                worker = pending.get(item) or sentinels.get(item)
                if worker is None or worker.outcome is not None:
                    continue
                if worker.result_conn.poll():
                    try:
                        worker.outcome = worker.result_conn.recv()
                    except EOFError:
                        worker.outcome = ("died", {"instance": worker.instance.name})
                elif not worker.process.is_alive():
                    worker.outcome = ("died", {"instance": worker.instance.name})
                else:
                    # Sentinel raced ahead of the result payload; re-check on
                    # the next wait round.
                    continue
                pending.pop(worker.result_conn, None)
                collected += 1
                # The coordinator has no scheduler rounds of its own; the
                # callback fires once per collected worker result (there are
                # never more results than instances, so callback_every-style
                # thinning would typically mean zero invocations).
                if self.round_callback is not None:
                    self.round_callback(collected)
                if worker.outcome[0] in ("error", "died"):
                    # Fail fast: stop the healthy workers instead of letting
                    # them park until the deadline masks the real failure.
                    logger.warning(
                        "worker %r reported %s; stopping the deployment",
                        worker.instance.name,
                        worker.outcome[0],
                    )
                    stop_event.set()

    def _raise_on_failure(self) -> None:
        errors = [w for w in self.workers if w.outcome and w.outcome[0] == "error"]
        if errors:
            worker = errors[0]
            document = worker.outcome[1]
            raise SchedulingError(
                f"instance {document['instance']!r} failed: {document['error']}\n"
                f"{document.get('traceback', '')}"
            )
        died = [w for w in self.workers if w.outcome and w.outcome[0] == "died"]
        if died:
            worker = died[0]
            raise SchedulingError(
                f"instance {worker.instance.name!r} worker process died "
                f"without a result (exit code {worker.process.exitcode})"
            )
        unfinished = [
            w for w in self.workers if w.outcome is None or w.outcome[0] == "stopped"
        ]
        if unfinished:
            names = [w.instance.name for w in unfinished]
            raise SchedulingError(
                f"instance(s) {names!r} did not finish within {self.timeout_s} seconds"
            )

    # -- result application ------------------------------------------------------
    def _apply_results(self) -> None:
        """Copy shipped counters / sink streams onto the coordinator objects."""
        by_channel = {channel.name: channel for channel in self.channels()}
        for worker in self.workers:
            document = worker.outcome[1]
            self.results[worker.instance.name] = document
            self.rounds += document["passes"]
            self._wakeups += document["wakeups"]
            apply_instance_result(
                worker.instance, document, by_channel, telemetry=self.telemetry
            )

    # -- introspection ------------------------------------------------------------
    def total_wakeups(self) -> int:
        """Operator wake-ups summed over all worker schedulers."""
        return self._wakeups

    @property
    def finished(self) -> bool:
        """True once every worker shipped a successful result."""
        return bool(self.workers) and all(
            worker.outcome is not None and worker.outcome[0] == "ok"
            for worker in self.workers
        )


def run_multiprocess(
    instances: List[SPEInstance],
    timeout_s: float = 300.0,
    start_method: str = "fork",
) -> MultiprocessRuntime:
    """Convenience wrapper: build a :class:`MultiprocessRuntime`, run it, return it."""
    runtime = MultiprocessRuntime(instances, timeout_s=timeout_s, start_method=start_method)
    runtime.run()
    return runtime
