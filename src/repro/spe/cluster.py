"""Cluster runtime: SPE instances as worker daemons on separate hosts.

The paper deploys GeneaLog across distinct machines (Odroid boards on a
switch); the :class:`~repro.spe.multiprocess.MultiprocessRuntime` gets as far
as separate *processes* on one machine, inheriting everything through
``fork``.  This module removes the shared-memory crutch entirely: instances
run inside **worker daemons** that may live anywhere reachable over TCP, and
everything they need -- the lowered plan, the channel wiring, the results --
travels over sockets.

Topology
--------
One **coordinator** (:class:`ClusterRuntime`, selected with
``Pipeline(execution="cluster", hosts=...)``) and one worker daemon per host
(spawnable as ``python -m repro.spe.cluster --serve host:port``, or
in-process for tests and single-machine runs).  Per run, the coordinator
opens one control connection per SPE instance and drives a five-step
session:

1. **plan** -- the instance is serialised with
   :mod:`repro.spe.plan` (closures ship by value) and sent together with a
   Python/format version stamp, which the worker checks before unpickling.
2. **ready** -- the worker deserialises the plan, opens an ephemeral *data
   listener*, and reports its ``host:port`` back.
3. **wire** -- the coordinator assembles the channel map (every channel is
   consumed by exactly one instance; its worker's data listener is that
   channel's address) and broadcasts it.  Each worker connects one data
   socket per *outgoing* channel -- announcing the channel name in a hello
   frame -- while its listener accepts and binds one socket per *incoming*
   channel.  Channels cross hosts as length-prefixed frames carrying the
   same serialised payloads the pipe transport ships
   (:class:`~repro.spe.sockets.SocketTransport`).
4. **start** -- once every worker reports **wired**, the coordinator starts
   them all.  Each worker drives its instance with the event-driven
   :class:`~repro.spe.scheduler.Scheduler`, parking on a selector over its
   consumer data sockets (plus the control socket, so a stop request
   interrupts an idle worker) exactly as the multiprocess workers park on
   their pipes.
5. **result** -- at quiescence the worker ships the same result document the
   multiprocess workers ship (sink streams, worker-measured latencies,
   per-operator / per-channel counters, traversal samples); the coordinator
   replays it into the coordinator-side objects via
   :mod:`repro.spe.shipping`, so callbacks, provenance collectors and
   ledger taps observe exactly the stream they would have seen locally.

Determinism and failure follow the multiprocess contract: every instance
still consumes its inputs in timestamp-merged order, so sinks are
byte-identical to ``execution="event"``; a worker that raises (or whose
control socket reaches EOF mid-run -- a dead daemon) makes the coordinator
stop every other worker immediately and re-raise the *first* failure.
"""

from __future__ import annotations

import argparse
import logging
import pickle
import selectors
import socket
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.spe.errors import ChannelError, SchedulingError, SerializationError
from repro.spe.instance import SPEInstance
from repro.spe.plan import (
    check_plan_version,
    deserialize_plan,
    plan_version,
    serialize_plan,
)
from repro.spe.runtime import _RuntimeBase
from repro.spe.scheduler import Scheduler
from repro.spe.shipping import (
    apply_instance_result,
    collect_result,
    prepare_sinks,
    require_unique_channel_names,
    restore_sinks,
    strip_sinks,
)
from repro.spe.sockets import (
    FrameDecoder,
    SocketTransport,
    connect_with_retry,
    encode_frame,
    recv_frame,
    send_frame,
)

#: how long an idle worker parks on its selector before re-checking state.
_WAIT_TIMEOUT_S = 0.05

logger = logging.getLogger(__name__)

#: how long the wire step waits for every inbound data socket to appear.
_WIRE_TIMEOUT_S = 30.0

#: address of a worker daemon.
Address = Tuple[str, int]


# -- control-plane codec -----------------------------------------------------
#
# Control messages (plans, channel maps, result documents) are pickled --
# they carry arbitrary Python payloads (the plan bytes, shipped sink events)
# -- and framed exactly like the data plane.  The *plan bytes inside* are the
# version-checked part; the envelope itself uses a protocol both ends of any
# supported interpreter pair can read.

_CONTROL_PICKLE_PROTOCOL = 4


def _encode_control(tag: str, body) -> bytes:
    return encode_frame(pickle.dumps((tag, body), protocol=_CONTROL_PICKLE_PROTOCOL))


def _decode_control(payload: bytes) -> Tuple[str, object]:
    try:
        tag, body = pickle.loads(payload)
    except Exception as exc:
        raise SerializationError(f"malformed control frame: {exc}") from exc
    return tag, body


def _send_control(sock: socket.socket, tag: str, body) -> None:
    send_frame(sock, _encode_control(tag, body))


def _recv_control(sock: socket.socket, decoder: FrameDecoder) -> Optional[Tuple[str, object]]:
    frame = recv_frame(sock, decoder)
    if frame is None:
        return None
    return _decode_control(frame)


def parse_address(text: str) -> Address:
    """Parse a ``host:port`` string (the CLI / ``hosts=`` syntax).

    Raises :class:`ValueError` (naming the offending text) on anything a
    socket could not bind or connect to later: missing/empty host or port,
    a non-numeric port, or a port outside 0-65535.
    """
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"expected 'host:port', got {text!r}")
    port_number = int(port)
    if port_number > 65535:
        raise ValueError(
            f"port {port_number} of {text!r} is out of range (expected 0-65535)"
        )
    return host, port_number


# -- the worker --------------------------------------------------------------

class _DataListener:
    """A worker's inbound data endpoint: accepts producers, binds channels.

    Listens on an ephemeral port; every accepted connection announces which
    channel it carries in a hello frame (``("h", channel_name)``), after
    which the socket is handed to that channel's
    :class:`~repro.spe.sockets.SocketTransport` consumer side.  Accepting
    runs in a daemon thread so producers connecting early (while this worker
    is still wiring its own outputs) are never refused.
    """

    def __init__(self, host: str) -> None:
        self._listener = socket.create_server((host, 0))
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._accepted: Dict[str, socket.socket] = {}
        self._condition = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"spe-data-{self._port}", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Address:
        return self._host, self._port

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                message = _recv_control(sock, FrameDecoder("data-hello"))
            except Exception:
                sock.close()
                continue
            if message is None or message[0] != "h":
                sock.close()
                continue
            with self._condition:
                if self._closed:
                    sock.close()
                    return
                self._accepted[str(message[1])] = sock
                self._condition.notify_all()

    def wait_for(self, channel_names: Sequence[str], timeout_s: float) -> Dict[str, socket.socket]:
        """Block until a producer connected for every named channel."""
        deadline = time.monotonic() + timeout_s
        with self._condition:
            while not all(name in self._accepted for name in channel_names):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = [n for n in channel_names if n not in self._accepted]
                    raise ChannelError(
                        f"data listener on {self._host}:{self._port} never "
                        f"heard from the producer(s) of channel(s) {missing!r} "
                        f"within {timeout_s} seconds"
                    )
                self._condition.wait(timeout=min(remaining, 0.25))
            return {name: self._accepted[name] for name in channel_names}

    def close(self) -> None:
        with self._condition:
            self._closed = True
            leftovers = list(self._accepted.values())
            self._accepted.clear()
        for sock in leftovers:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


class _WorkerSession:
    """One coordinator-to-worker session: plan, wire, run, ship the result."""

    def __init__(self, control: socket.socket, host: str) -> None:
        self._control = control
        self._host = host
        self._decoder = FrameDecoder("worker-control")
        self._instance: Optional[SPEInstance] = None
        self._listener: Optional[_DataListener] = None
        self._producer_socks: List[socket.socket] = []
        self._consumer_socks: List[socket.socket] = []

    # -- protocol steps ----------------------------------------------------
    def run(self) -> None:
        try:
            self._handle_plan()
            self._handle_wire()
            self._handle_start()
        except _StopRequested:
            name = self._instance.name if self._instance is not None else "?"
            try:
                _send_control(self._control, "stopped", {"instance": name})
            except OSError:  # coordinator already gone
                pass
        except BaseException as exc:  # noqa: BLE001 - shipped to the coordinator
            name = self._instance.name if self._instance is not None else "?"
            try:
                _send_control(
                    self._control,
                    "error",
                    {
                        "instance": name,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            except OSError:  # coordinator already gone
                pass
        finally:
            self.close()

    def _expect(self, expected: str):
        message = _recv_control(self._control, self._decoder)
        if message is None:
            raise ChannelError(
                f"coordinator hung up before sending {expected!r}"
            )
        tag, body = message
        if tag == "stop":
            raise _StopRequested()
        if tag != expected:
            raise SerializationError(
                f"protocol error: expected {expected!r}, got {tag!r}"
            )
        return body

    def _handle_plan(self) -> None:
        body = self._expect("plan")
        check_plan_version(body.get("version"))
        self._instance = deserialize_plan(body["plan"])
        self._max_passes = int(body.get("max_passes", 10_000_000))
        logger.debug(
            "session on %s: received plan for instance %r (%d bytes)",
            self._host,
            self._instance.name,
            len(body["plan"]),
        )
        self._listener = _DataListener(self._host)
        host, port = self._listener.address
        _send_control(
            self._control,
            "ready",
            {"instance": self._instance.name, "data_host": host, "data_port": port},
        )

    def _handle_wire(self) -> None:
        body = self._expect("wire")
        addresses: Dict[str, Tuple[str, int]] = {
            name: (host, port) for name, (host, port) in body["channels"].items()
        }
        instance = self._instance
        # Outgoing: connect one data socket per Send channel and announce it.
        for send in instance.sends():
            channel = send.channel
            host, port = addresses[channel.name]
            sock = connect_with_retry(
                host, port, what=f"data listener of channel {channel.name!r}"
            )
            _send_control(sock, "h", channel.name)
            channel.transport.attach_producer(sock)
            self._producer_socks.append(sock)
        # Incoming: the listener thread accepted the producers' connections.
        incoming = [receive.channel for receive in instance.receives()]
        accepted = self._listener.wait_for(
            [channel.name for channel in incoming], _WIRE_TIMEOUT_S
        )
        for channel in incoming:
            sock = accepted[channel.name]
            channel.transport.attach_consumer(sock)
            self._consumer_socks.append(sock)
        _send_control(self._control, "wired", {"instance": instance.name})

    def _poll_stop(self) -> bool:
        """Non-blocking check for a coordinator stop (or a dead coordinator)."""
        try:
            data = self._control.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True
        if not data:
            return True  # coordinator gone: stop quietly
        for frame in self._decoder.feed(data):
            if _decode_control(frame)[0] == "stop":
                return True
        return False

    def _handle_start(self) -> None:
        body = self._expect("start")
        instance = self._instance
        taps = prepare_sinks(instance)
        scheduler = Scheduler(instance, max_passes=self._max_passes)
        # The start body opts this worker into telemetry: the deserialised
        # instance builds its *own* tracer (plan-shipped objects never carry
        # one) and ships the ring home inside the result document.
        telemetry_options = (body or {}).get("telemetry")
        if telemetry_options:
            from repro.obs.telemetry import enable_worker_telemetry

            enable_worker_telemetry(
                instance, scheduler, int(telemetry_options.get("capacity", 0))
            )
        logger.debug("session on %s: starting instance %r", self._host, instance.name)
        # The control socket joins the park selector so a stop request (or a
        # dead coordinator) interrupts an idle worker immediately.
        self._control.setblocking(False)
        selector = selectors.DefaultSelector()
        selector.register(self._control, selectors.EVENT_READ, None)
        waitable: Dict[socket.socket, object] = {}
        for receive in instance.receives():
            transport = receive.channel.transport
            if isinstance(transport, SocketTransport):
                sock = transport.consumer_socket
                waitable[sock] = receive
                selector.register(sock, selectors.EVENT_READ, receive)
        passes = 0
        stopped = False
        try:
            while True:
                progressed = scheduler.step()
                passes += 1
                if scheduler.finished:
                    break
                if self._poll_stop():
                    stopped = True
                    break
                if progressed or scheduler.has_ready_work:
                    continue
                if not waitable:
                    raise SchedulingError(
                        f"instance {instance.name!r} made no progress before completion"
                    )
                # Park on the data sockets: a frame from an upstream worker
                # makes its socket readable, and signalling the Receive puts
                # it on this scheduler's ready queue.  Closed channels are
                # unregistered (a drained EOF would stay readable forever).
                for key, _ in selector.select(timeout=_WAIT_TIMEOUT_S):
                    receive = key.data
                    if receive is not None:
                        receive.signal()
                for sock, receive in list(waitable.items()):
                    if receive.channel.closed:
                        selector.unregister(sock)
                        del waitable[sock]
        finally:
            selector.close()
            self._control.setblocking(True)
        if stopped:
            logger.info("session on %s: instance %r stopped", self._host, instance.name)
            _send_control(self._control, "stopped", {"instance": instance.name})
            return
        logger.debug(
            "session on %s: instance %r finished after %d passes",
            self._host,
            instance.name,
            passes,
        )
        _send_control(
            self._control, "ok", collect_result(instance, scheduler, passes, taps)
        )

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
        for sock in self._producer_socks + self._consumer_socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        try:
            self._control.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


class _StopRequested(Exception):
    """The coordinator asked this worker to stop before it started."""


class ClusterWorker:
    """A worker daemon: serves SPE instances shipped by a coordinator.

    Listens on ``host:port`` (an ephemeral port when ``port=0``) and handles
    each control connection in its own thread, so one daemon can host
    several instances of one run -- or several runs.  Start it standalone
    with ``python -m repro.spe.cluster --serve host:port``, or in-process
    via :meth:`start` (what ``hosts=None`` does for every instance).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.create_server((host, port))
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Address:
        return self._host, self._port

    def serve_forever(self) -> None:
        """Accept coordinator sessions until :meth:`close` (blocking)."""
        while True:
            try:
                control, _ = self._listener.accept()
            except OSError:  # listener closed
                return
            control.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _WorkerSession(control, self._host)
            threading.Thread(
                target=session.run,
                name=f"spe-session-{self._port}",
                daemon=True,
            ).start()

    def start(self) -> "ClusterWorker":
        """Serve in a daemon thread (the in-process worker mode); return self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"spe-worker-{self._port}", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass


# -- the coordinator ---------------------------------------------------------

class _InstanceSession:
    """Coordinator-side handle of one instance's worker session."""

    __slots__ = ("instance", "address", "sock", "decoder", "outcome", "data_address")

    def __init__(self, instance: SPEInstance, address: Address) -> None:
        self.instance = instance
        self.address = address
        self.sock: Optional[socket.socket] = None
        self.decoder = FrameDecoder("coordinator-control")
        #: ("ok" | "error" | "stopped" | "died", document) once known.
        self.outcome: Optional[Tuple[str, Dict]] = None
        self.data_address: Optional[Address] = None


class ClusterRuntime(_RuntimeBase):
    """Runs a distributed deployment on worker daemons over TCP.

    ``hosts`` selects where the instances run:

    * ``None`` (the default) -- one in-process :class:`ClusterWorker` per
      instance on a loopback ephemeral port.  Everything still crosses real
      TCP sockets and the plans are really serialised; only the daemons'
      process boundary is elided.  This is the test / single-machine mode.
    * a list of ``"host:port"`` strings (or ``(host, port)`` tuples) --
      instances are assigned round-robin over the daemons.
    * a dict ``instance name -> "host:port"`` -- explicit placement.

    Every inter-instance channel must be backed by a
    :class:`~repro.spe.sockets.SocketTransport` (the
    :class:`~repro.api.pipeline.Pipeline` builds them that way under
    ``execution="cluster"``).
    """

    def __init__(
        self,
        instances: List[SPEInstance],
        hosts: Union[None, Sequence, Dict[str, object]] = None,
        timeout_s: float = 300.0,
        max_rounds: int = 10_000_000,
        round_callback=None,
        callback_every: int = 16,
        connect_retries: int = 10,
        connect_backoff_s: float = 0.05,
        telemetry=None,
    ) -> None:
        super().__init__(instances)
        #: the run's :class:`repro.obs.telemetry.Telemetry` (None = off);
        #: each worker records its own spans (opted in through the start
        #: body), the coordinator records the plan/wire/collect/apply
        #: phases, and the shipped buffers merge on apply.
        self.telemetry = telemetry
        self.timeout_s = timeout_s
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self.max_rounds = max_rounds
        self.round_callback = round_callback
        self.callback_every = max(1, callback_every)
        self.rounds = 0
        self._wakeups = 0
        self.sessions: List[_InstanceSession] = []
        #: instance name -> shipped result document (after a successful run).
        self.results: Dict[str, Dict] = {}
        self._own_workers: List[ClusterWorker] = []
        self._hosts = hosts
        self._validate_hosts()
        require_unique_channel_names(self.channels(), "cluster")
        for channel in self.channels():
            if not isinstance(channel.transport, SocketTransport):
                raise SchedulingError(
                    f"channel {channel.name!r} is not socket-backed; build "
                    "the deployment with socket transports (e.g. "
                    "Pipeline(execution='cluster'))"
                )

    # -- placement ---------------------------------------------------------
    @staticmethod
    def _as_address(value) -> Address:
        if isinstance(value, str):
            return parse_address(value)
        try:
            host, port = value
            address = str(host), int(port)
        except (TypeError, ValueError):
            raise ValueError(f"expected 'host:port' or (host, port), got {value!r}") from None
        if not address[0] or not 0 <= address[1] <= 65535:
            raise ValueError(
                f"invalid worker address {value!r} (expected a non-empty host "
                "and a port in 0-65535)"
            )
        return address

    def _validate_hosts(self) -> None:
        """Reject malformed ``hosts=`` entries up front, naming the offender.

        Without this the first bad entry would surface mid-run as a raw
        ``ValueError`` from address parsing (or an ``OSError`` from the
        socket layer), after workers have already been spawned.
        """
        if self._hosts is None:
            return
        entries = (
            self._hosts.items()
            if isinstance(self._hosts, dict)
            else enumerate(self._hosts)
        )
        for key, value in entries:
            try:
                self._as_address(value)
            except ValueError as exc:
                where = (
                    f"hosts[{key!r}]" if isinstance(self._hosts, dict) else f"hosts[{key}]"
                )
                raise SchedulingError(f"invalid worker address at {where}: {exc}") from None

    def _assign_addresses(self) -> Dict[str, Address]:
        """Instance name -> worker daemon address (spawning local ones if needed)."""
        if self._hosts is None:
            addresses = {}
            for instance in self.instances:
                worker = ClusterWorker().start()
                self._own_workers.append(worker)
                addresses[instance.name] = worker.address
            return addresses
        if isinstance(self._hosts, dict):
            missing = [i.name for i in self.instances if i.name not in self._hosts]
            if missing:
                raise SchedulingError(
                    f"hosts mapping does not place instance(s) {missing!r}"
                )
            return {
                instance.name: self._as_address(self._hosts[instance.name])
                for instance in self.instances
            }
        pool = [self._as_address(value) for value in self._hosts]
        if not pool:
            raise SchedulingError("hosts must name at least one worker daemon")
        return {
            instance.name: pool[index % len(pool)]
            for index, instance in enumerate(self.instances)
        }

    # -- execution ---------------------------------------------------------
    def run(self) -> int:
        """Run every instance to quiescence; return the worker pass count."""
        for instance in self.instances:
            instance.validate()
        addresses = self._assign_addresses()
        self.sessions = [
            _InstanceSession(instance, addresses[instance.name])
            for instance in self.instances
        ]
        saved_sinks = {
            session.instance.name: strip_sinks(session.instance)
            for session in self.sessions
        }
        telemetry = self.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        start_body = (
            {"telemetry": {"capacity": telemetry.config.capacity}}
            if telemetry is not None
            else None
        )

        def _phase(name: str, step) -> None:
            if tracer is None:
                step()
                return
            started = tracer.clock()
            step()
            tracer.record(name, "workers", started)

        try:
            _phase("cluster.plan", self._ship_plans)
            _phase("cluster.wire", self._wire_channels)
            for session in self.sessions:
                _send_control(session.sock, "start", start_body)
            _phase("cluster.collect", self._collect)
        finally:
            self._shutdown()
            for session in self.sessions:
                restore_sinks(session.instance, saved_sinks[session.instance.name])
        self._raise_on_failure()
        _phase("cluster.apply", self._apply_results)
        return self.rounds

    def _ship_plans(self) -> None:
        version = plan_version()
        for session in self.sessions:
            host, port = session.address
            try:
                session.sock = connect_with_retry(
                    host,
                    port,
                    retries=self.connect_retries,
                    backoff_s=self.connect_backoff_s,
                    what=f"cluster worker for instance {session.instance.name!r}",
                )
            except ChannelError as exc:
                raise SchedulingError(
                    f"cannot deploy instance {session.instance.name!r}: {exc}"
                ) from exc
            _send_control(
                session.sock,
                "plan",
                {
                    "version": version,
                    "instance": session.instance.name,
                    "plan": serialize_plan(session.instance),
                    "max_passes": self.max_rounds,
                },
            )
        for session in self.sessions:
            tag, body = self._await(session, ("ready",))
            session.data_address = (body["data_host"], body["data_port"])

    def _wire_channels(self) -> None:
        # A channel is consumed by exactly one instance; its worker's data
        # listener is the channel's inbound address.
        consumer_of: Dict[str, _InstanceSession] = {}
        for session in self.sessions:
            for channel in session.instance.incoming_channels():
                consumer_of[channel.name] = session
        channel_map = {
            name: list(session.data_address) for name, session in consumer_of.items()
        }
        for session in self.sessions:
            _send_control(session.sock, "wire", {"channels": channel_map})
        for session in self.sessions:
            self._await(session, ("wired",))

    def _await(self, session: _InstanceSession, expected: Tuple[str, ...]):
        """Block on one session's next control message; errors raise at once."""
        deadline = time.monotonic() + self.timeout_s
        session.sock.settimeout(self.timeout_s)
        try:
            message = _recv_control(session.sock, session.decoder)
        except (OSError, ChannelError) as exc:
            raise SchedulingError(
                f"cluster worker of instance {session.instance.name!r} at "
                f"{session.address[0]}:{session.address[1]} went away during "
                f"setup: {exc}"
            ) from exc
        finally:
            session.sock.settimeout(None)
        if message is None:
            raise SchedulingError(
                f"cluster worker of instance {session.instance.name!r} at "
                f"{session.address[0]}:{session.address[1]} hung up during setup"
            )
        tag, body = message
        if tag == "error":
            session.outcome = (tag, body)
            raise SchedulingError(
                f"instance {body.get('instance', session.instance.name)!r} "
                f"failed: {body.get('error')}\n{body.get('traceback', '')}"
            )
        if tag not in expected:
            raise SchedulingError(
                f"protocol error from instance {session.instance.name!r}: "
                f"expected one of {expected!r}, got {tag!r}"
            )
        if time.monotonic() > deadline:  # pragma: no cover - settimeout covers it
            raise SchedulingError(
                f"instance {session.instance.name!r} setup exceeded "
                f"{self.timeout_s} seconds"
            )
        return tag, body

    def _collect(self) -> None:
        """Wait for every worker's result (or death), within the deadline."""
        deadline = time.monotonic() + self.timeout_s
        selector = selectors.DefaultSelector()
        pending: Dict[socket.socket, _InstanceSession] = {}
        for session in self.sessions:
            session.sock.setblocking(False)
            selector.register(session.sock, selectors.EVENT_READ, session)
            pending[session.sock] = session
        collected = 0
        failed = False
        try:
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                for key, _ in selector.select(timeout=min(remaining, 0.25)):
                    session = key.data
                    if session.sock not in pending:
                        continue
                    outcome = self._read_outcome(session)
                    if outcome is None:
                        continue
                    session.outcome = outcome
                    selector.unregister(session.sock)
                    del pending[session.sock]
                    collected += 1
                    if self.round_callback is not None:
                        self.round_callback(collected)
                    if outcome[0] in ("error", "died") and not failed:
                        # Fail fast: stop the healthy workers instead of
                        # letting them park until the deadline masks the
                        # real failure.
                        logger.warning(
                            "worker of instance %r reported %s; stopping the "
                            "deployment",
                            session.instance.name,
                            outcome[0],
                        )
                        failed = True
                        self._broadcast_stop(exclude=session)
        finally:
            selector.close()
            for session in self.sessions:
                if session.sock is not None:
                    try:
                        session.sock.setblocking(True)
                    except OSError:
                        pass

    def _read_outcome(self, session: _InstanceSession) -> Optional[Tuple[str, Dict]]:
        """Drain one session's control socket; return its outcome if final."""
        while True:
            try:
                data = session.sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                return None
            except OSError:
                return ("died", {"instance": session.instance.name})
            if not data:
                return ("died", {"instance": session.instance.name})
            for frame in session.decoder.feed(data):
                tag, body = _decode_control(frame)
                if tag in ("ok", "error", "stopped"):
                    return (tag, body)

    def _broadcast_stop(self, exclude: Optional[_InstanceSession] = None) -> None:
        for session in self.sessions:
            if session is exclude or session.sock is None or session.outcome is not None:
                continue
            try:
                _send_control(session.sock, "stop", None)
            except OSError:
                pass

    def _shutdown(self) -> None:
        self._broadcast_stop()
        for session in self.sessions:
            if session.sock is not None:
                try:
                    session.sock.close()
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        for worker in self._own_workers:
            worker.close()
        self._own_workers = []

    def _raise_on_failure(self) -> None:
        errors = [s for s in self.sessions if s.outcome and s.outcome[0] == "error"]
        if errors:
            session = errors[0]
            document = session.outcome[1]
            raise SchedulingError(
                f"instance {document['instance']!r} failed: {document['error']}\n"
                f"{document.get('traceback', '')}"
            )
        died = [s for s in self.sessions if s.outcome and s.outcome[0] == "died"]
        if died:
            session = died[0]
            raise SchedulingError(
                f"instance {session.instance.name!r} cluster worker at "
                f"{session.address[0]}:{session.address[1]} died without a result"
            )
        unfinished = [
            s for s in self.sessions if s.outcome is None or s.outcome[0] == "stopped"
        ]
        if unfinished:
            names = [s.instance.name for s in unfinished]
            raise SchedulingError(
                f"instance(s) {names!r} did not finish within {self.timeout_s} seconds"
            )

    # -- result application ------------------------------------------------
    def _apply_results(self) -> None:
        """Copy shipped counters / sink streams onto the coordinator objects."""
        by_channel = {channel.name: channel for channel in self.channels()}
        for session in self.sessions:
            document = session.outcome[1]
            self.results[session.instance.name] = document
            self.rounds += document["passes"]
            self._wakeups += document["wakeups"]
            apply_instance_result(
                session.instance, document, by_channel, telemetry=self.telemetry
            )

    # -- introspection -------------------------------------------------------
    def total_wakeups(self) -> int:
        """Operator wake-ups summed over all worker schedulers."""
        return self._wakeups

    @property
    def finished(self) -> bool:
        """True once every worker shipped a successful result."""
        return bool(self.sessions) and all(
            session.outcome is not None and session.outcome[0] == "ok"
            for session in self.sessions
        )


def run_cluster(
    instances: List[SPEInstance],
    hosts=None,
    timeout_s: float = 300.0,
) -> ClusterRuntime:
    """Convenience wrapper: build a :class:`ClusterRuntime`, run it, return it."""
    runtime = ClusterRuntime(instances, hosts=hosts, timeout_s=timeout_s)
    runtime.run()
    return runtime


# -- CLI ---------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spe.cluster",
        description="Run a cluster worker daemon that serves SPE instances.",
    )
    parser.add_argument(
        "--serve",
        metavar="HOST:PORT",
        required=True,
        help="bind address of the worker daemon (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="stdlib logging threshold of the daemon (default: info)",
    )
    options = parser.parse_args(argv)
    try:
        host, port = parse_address(options.serve)
    except ValueError as exc:
        parser.error(f"argument --serve: {exc}")
    # The daemon logs to stdout so supervisors (and the coordinator spawning
    # it) read one stream; the serving banner below is the line they parse
    # for the bound (possibly ephemeral) port.
    logging.basicConfig(
        level=getattr(logging, options.log_level.upper()),
        format="%(asctime)s %(levelname)s %(name)s: %(message)s",
        stream=sys.stdout,
        force=True,
    )
    worker = ClusterWorker(host, port)
    bound_host, bound_port = worker.address
    logger.info("cluster worker serving on %s:%d", bound_host, bound_port)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        worker.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())
