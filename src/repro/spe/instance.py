"""SPE instances: the unit of deployment for distributed queries.

Each SPE instance represents a single process (section 2): operators inside
an instance share memory (so GeneaLog can use plain object references), while
tuples travelling between instances go through Send/Receive operators and are
serialised (so only explicitly serialised metadata survives).
"""

from __future__ import annotations

from typing import List, Optional

from repro.spe.channels import Channel
from repro.spe.query import Query


class SPEInstance(Query):
    """A :class:`Query` fragment deployed as one process.

    The paper classifies instances by their position in the instance graph:

    * a *source* instance hosts Sources and has no Receive operators,
    * a *sink* instance hosts Sinks and has no Send operators,
    * every other instance is *intermediate*.

    The *ordering value* of an instance is the longest path from a source
    instance to it; it is computed by the
    :class:`~repro.spe.runtime.DistributedRuntime`.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name=name)
        #: longest path from a source instance, filled in by the runtime.
        self.ordering_value: Optional[int] = None

    # -- classification ------------------------------------------------------
    @property
    def is_source_instance(self) -> bool:
        """True when the instance is fed only by its own Sources."""
        return bool(self.sources()) and not self.receives()

    @property
    def is_sink_instance(self) -> bool:
        """True when the instance hosts Sinks and sends nothing downstream."""
        return bool(self.sinks()) and not self.sends()

    @property
    def is_intermediate_instance(self) -> bool:
        """True when the instance is neither a source nor a sink instance."""
        return not self.is_source_instance and not self.is_sink_instance

    # -- connectivity -----------------------------------------------------------
    def outgoing_channels(self) -> List[Channel]:
        """Channels written to by this instance's Send operators."""
        return [send.channel for send in self.sends()]

    def incoming_channels(self) -> List[Channel]:
        """Channels read by this instance's Receive operators."""
        return [receive.channel for receive in self.receives()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SPEInstance(name={self.name!r}, operators={len(self.operators)}, "
            f"ordering_value={self.ordering_value})"
        )
