"""GeneaLog's fixed-size per-tuple metadata.

Each tuple processed under GeneaLog carries exactly four meta-attributes
(section 4): ``Type`` (which operator created the tuple), ``U1`` and ``U2``
(references to the contributing input tuples) and ``N`` (the "next" link used
to walk an Aggregate's window).  For inter-process provenance (section 6) a
fifth constant-size attribute, the unique ``ID``, is added.

``U1``, ``U2`` and ``N`` are plain Python object references; the CPython
reference-counting collector plays the role the paper assigns to the
process's memory reclamation: a source tuple stays alive exactly as long as
some reachable tuple still points at it, and is reclaimed as soon as it can
no longer contribute to any output.
"""

from __future__ import annotations

from typing import Optional

from repro.core.types import TupleType
from repro.spe.tuples import StreamTuple


class GeneaLogMeta:
    """The fixed-size metadata block attached to every tuple under GeneaLog."""

    __slots__ = ("type", "u1", "u2", "n", "tuple_id")

    def __init__(
        self,
        type: TupleType,
        u1: Optional[StreamTuple] = None,
        u2: Optional[StreamTuple] = None,
        n: Optional[StreamTuple] = None,
        tuple_id: Optional[str] = None,
    ) -> None:
        self.type = type
        self.u1 = u1
        self.u2 = u2
        self.n = n
        self.tuple_id = tuple_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneaLogMeta(type={self.type}, id={self.tuple_id!r}, "
            f"u1={'set' if self.u1 is not None else None}, "
            f"u2={'set' if self.u2 is not None else None}, "
            f"n={'set' if self.n is not None else None})"
        )


def get_meta(tup: StreamTuple) -> Optional[GeneaLogMeta]:
    """Return the GeneaLog metadata of ``tup`` or None when absent."""
    meta = tup.meta
    return meta if isinstance(meta, GeneaLogMeta) else None


def require_meta(tup: StreamTuple) -> GeneaLogMeta:
    """Return the GeneaLog metadata of ``tup``, treating bare tuples as sources.

    Tuples created outside any instrumented operator (hand-built test input,
    or tuples produced before provenance was switched on) carry no metadata;
    GeneaLog treats them as source tuples, which is the only sound assumption
    for a tuple whose derivation is unknown.
    """
    meta = get_meta(tup)
    if meta is None:
        meta = GeneaLogMeta(TupleType.SOURCE)
        tup.meta = meta
    return meta


#: Number of meta-attributes GeneaLog adds to a tuple (T, U1, U2, N, ID).
METADATA_FIELDS = 5
