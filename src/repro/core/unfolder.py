"""The single-stream unfolder (SU) operator of section 5.

The SU operator has one input stream and two output streams: ``SO`` is an
exact copy of the input (it keeps feeding the Sink), and ``U`` is the
*unfolded* stream in which every tuple is replaced by its originating tuples
combined with the tuple's own attributes (Definitions 4.1 and 5.1).

Two implementations are provided, as in the paper:

* :class:`SUOperator` -- the efficient "fused" user-defined operator,
* :func:`attach_su` with ``fused=False`` -- the composition of standard
  operators of Figure 5B (a Multiplex feeding the Sink and an unfolding Map).

Both produce identical unfolded streams; a test asserts this equivalence.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.meta import get_meta
from repro.core.types import TupleType
from repro.spe.operators.base import Operator, SingleInputOperator
from repro.spe.provenance_api import ProvenanceManager
from repro.spe.query import Query
from repro.spe.tuples import StreamTuple

#: attribute names added to every unfolded tuple.
SINK_TS_FIELD = "sink_ts"
SINK_ID_FIELD = "sink_id"
ORIGIN_TS_FIELD = "ts_o"
ORIGIN_ID_FIELD = "id_o"
ORIGIN_TYPE_FIELD = "type_o"
SINK_PREFIX = "sink_"


def origin_type_name(origin: StreamTuple) -> str:
    """The type (SOURCE or REMOTE) of an originating tuple, as a string."""
    meta = get_meta(origin)
    if meta is None:
        return TupleType.SOURCE.value
    return meta.type.value


def make_unfolded_values(
    unfolded_of: StreamTuple,
    origin: StreamTuple,
    manager: ProvenanceManager,
) -> Dict[str, Any]:
    """Build the attribute mapping of one unfolded tuple.

    The unfolded tuple carries the attributes of the tuple being unfolded
    (prefixed with ``sink_``) together with the originating tuple's
    attributes and its timestamp / unique id / type (``ts_o`` / ``id_o`` /
    ``type_o``, Definition 6.2).
    """
    values: Dict[str, Any] = {SINK_PREFIX + key: value for key, value in unfolded_of.values.items()}
    values[SINK_TS_FIELD] = unfolded_of.ts
    values[SINK_ID_FIELD] = manager.tuple_id(unfolded_of)
    values.update(origin.values)
    values[ORIGIN_TS_FIELD] = origin.ts
    values[ORIGIN_ID_FIELD] = manager.tuple_id(origin)
    values[ORIGIN_TYPE_FIELD] = origin_type_name(origin)
    return values


class UnfoldMapOperator(SingleInputOperator):
    """The Map of Figure 5B: expands each tuple into its originating tuples.

    For every input tuple ``t`` it applies ``findProvenance`` (through the
    installed provenance manager) and emits one unfolded tuple per
    originating tuple.
    """

    max_inputs = 1
    max_outputs = 1

    def process_tuple(self, tup: StreamTuple) -> None:
        for origin in self.provenance.unfold(tup):
            out = StreamTuple.owned(ts=tup.ts, values=make_unfolded_values(tup, origin, self.provenance))
            out.wall = max(tup.wall, origin.wall)
            self.provenance.on_map_output(out, tup)
            self.emit(out)


class SUOperator(SingleInputOperator):
    """Fused single-stream unfolder (Definition 5.2, Figure 5A).

    Output port 0 is ``SO`` (the exact copy feeding the Sink), output port 1
    is ``U`` (the unfolded stream).  Connect the data consumer first and the
    provenance consumer second.
    """

    max_inputs = 1
    max_outputs = 2

    #: output port delivering the unmodified input stream.
    DATA_PORT = 0
    #: output port delivering the unfolded stream.
    UNFOLDED_PORT = 1

    def process_tuple(self, tup: StreamTuple) -> None:
        self.emit(tup, self.DATA_PORT)
        for origin in self.provenance.unfold(tup):
            out = StreamTuple.owned(ts=tup.ts, values=make_unfolded_values(tup, origin, self.provenance))
            out.wall = max(tup.wall, origin.wall)
            self.provenance.on_map_output(out, tup)
            self.emit(out, self.UNFOLDED_PORT)


def attach_su(
    query: Query,
    producer: Operator,
    name: str = "su",
    fused: bool = True,
) -> Tuple[Operator, Operator]:
    """Insert an SU fed by ``producer`` into ``query``.

    Returns ``(data_operator, unfolded_operator)``: connect the Sink (or the
    Send feeding the next instance) to ``data_operator``'s next free output
    port, and the provenance consumer to ``unfolded_operator``.

    With ``fused=True`` a single :class:`SUOperator` is used; with
    ``fused=False`` the standard-operator composition of Figure 5B
    (Multiplex + unfolding Map) is built instead.
    """
    if fused:
        su = query.add(SUOperator(name))
        query.connect(producer, su)
        return su, su
    multiplex = query.add_multiplex(f"{name}_multiplex")
    unfold = query.add(UnfoldMapOperator(f"{name}_unfold"))
    query.connect(producer, multiplex)
    query.connect(multiplex, unfold)
    return multiplex, unfold
