"""The single-stream unfolder (SU) operator of section 5.

The SU operator has one input stream and two output streams: ``SO`` is an
exact copy of the input (it keeps feeding the Sink), and ``U`` is the
*unfolded* stream in which every tuple is replaced by its originating tuples
combined with the tuple's own attributes (Definitions 4.1 and 5.1).

Two implementations are provided, as in the paper:

* :class:`SUOperator` -- the efficient "fused" user-defined operator,
* :func:`attach_su` with ``fused=False`` -- the composition of standard
  operators of Figure 5B (a Multiplex feeding the Sink and an unfolding Map).

Both produce identical unfolded streams; a test asserts this equivalence.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.core.meta import get_meta
from repro.core.types import TupleType
from repro.spe.operators.base import Operator, SingleInputOperator
from repro.spe.provenance_api import ProvenanceManager
from repro.spe.query import Query
from repro.spe.tuples import StreamTuple

#: attribute names added to every unfolded tuple.
SINK_TS_FIELD = "sink_ts"
SINK_ID_FIELD = "sink_id"
ORIGIN_TS_FIELD = "ts_o"
ORIGIN_ID_FIELD = "id_o"
ORIGIN_TYPE_FIELD = "type_o"
SINK_PREFIX = "sink_"


#: enum-member -> value string, bypassing the DynamicClassAttribute property
#: (one descriptor call per unfolded tuple adds up at provenance rates).
_TYPE_VALUE = {member: member.value for member in TupleType}
_SOURCE_VALUE = TupleType.SOURCE.value

#: schema tuple -> ``sink_``-prefixed schema tuple.  Unfolded tuples are
#: produced once per sink tuple / source tuple pair, and re-prefixing the
#: same handful of schemas each time is pure overhead.
_PREFIXED_KEYS: Dict[Tuple[str, ...], Tuple[str, ...]] = {}


def origin_type_name(origin: StreamTuple) -> str:
    """The type (SOURCE or REMOTE) of an originating tuple, as a string."""
    meta = get_meta(origin)
    if meta is None:
        return _SOURCE_VALUE
    return _TYPE_VALUE[meta.type]


def _sink_base_values(
    unfolded_of: StreamTuple, manager: ProvenanceManager
) -> Dict[str, Any]:
    """The sink-side half of an unfolded tuple's attributes.

    This part is identical for every originating tuple of one unfolded
    tuple, so the unfolders compute it once per input tuple and copy it per
    origin.
    """
    sink_values = unfolded_of.values
    keys = tuple(sink_values)
    prefixed = _PREFIXED_KEYS.get(keys)
    if prefixed is None:
        if len(_PREFIXED_KEYS) > 1024:  # degenerate dynamic schemas
            _PREFIXED_KEYS.clear()
        prefixed = _PREFIXED_KEYS[keys] = tuple(SINK_PREFIX + key for key in keys)
    base: Dict[str, Any] = dict(zip(prefixed, sink_values.values()))
    base[SINK_TS_FIELD] = unfolded_of.ts
    base[SINK_ID_FIELD] = manager.tuple_id(unfolded_of)
    return base


def _with_origin(
    base: Dict[str, Any], origin: StreamTuple, manager: ProvenanceManager
) -> Dict[str, Any]:
    """One unfolded tuple's attributes: sink-side ``base`` plus one origin."""
    values = dict(base)
    values.update(origin.values)
    values[ORIGIN_TS_FIELD] = origin.ts
    values[ORIGIN_ID_FIELD] = manager.tuple_id(origin)
    values[ORIGIN_TYPE_FIELD] = origin_type_name(origin)
    return values


def make_unfolded_values(
    unfolded_of: StreamTuple,
    origin: StreamTuple,
    manager: ProvenanceManager,
) -> Dict[str, Any]:
    """Build the attribute mapping of one unfolded tuple.

    The unfolded tuple carries the attributes of the tuple being unfolded
    (prefixed with ``sink_``) together with the originating tuple's
    attributes and its timestamp / unique id / type (``ts_o`` / ``id_o`` /
    ``type_o``, Definition 6.2).
    """
    return _with_origin(_sink_base_values(unfolded_of, manager), origin, manager)


class UnfoldMapOperator(SingleInputOperator):
    """The Map of Figure 5B: expands each tuple into its originating tuples.

    For every input tuple ``t`` it applies ``findProvenance`` (through the
    installed provenance manager) and emits one unfolded tuple per
    originating tuple.
    """

    max_inputs = 1
    max_outputs = 1

    def process_tuple(self, tup: StreamTuple) -> None:
        manager = self.provenance
        origins = manager.unfold(tup)
        if not origins:
            return
        base = _sink_base_values(tup, manager)
        for origin in origins:
            out = StreamTuple.owned(ts=tup.ts, values=_with_origin(base, origin, manager))
            out.wall = max(tup.wall, origin.wall)
            manager.on_map_output(out, tup)
            self.emit(out)


class SUOperator(SingleInputOperator):
    """Fused single-stream unfolder (Definition 5.2, Figure 5A).

    Output port 0 is ``SO`` (the exact copy feeding the Sink), output port 1
    is ``U`` (the unfolded stream).  Connect the data consumer first and the
    provenance consumer second.
    """

    max_inputs = 1
    max_outputs = 2

    #: output port delivering the unmodified input stream.
    DATA_PORT = 0
    #: output port delivering the unfolded stream.
    UNFOLDED_PORT = 1

    def process_tuple(self, tup: StreamTuple) -> None:
        self.emit(tup, self.DATA_PORT)
        manager = self.provenance
        origins = manager.unfold(tup)
        if not origins:
            return
        base = _sink_base_values(tup, manager)
        for origin in origins:
            out = StreamTuple.owned(ts=tup.ts, values=_with_origin(base, origin, manager))
            out.wall = max(tup.wall, origin.wall)
            manager.on_map_output(out, tup)
            self.emit(out, self.UNFOLDED_PORT)

    def process_batch(self, batch) -> None:
        # Batched variant: one pass-through emit and one unfolded emit per
        # input batch (instead of one stream push + consumer wake per tuple);
        # per-stream tuple order is identical to the per-tuple path.
        manager = self.provenance
        unfold = manager.unfold
        on_map_output = manager.on_map_output
        owned = StreamTuple.owned
        unfolded = []
        append = unfolded.append
        tracer = self.tracer
        started = tracer.clock() if tracer is not None else 0.0
        for tup in batch:
            origins = unfold(tup)
            if not origins:
                continue
            ts = tup.ts
            wall = tup.wall
            base = _sink_base_values(tup, manager)
            for origin in origins:
                out = owned(ts=ts, values=_with_origin(base, origin, manager))
                origin_wall = origin.wall
                out.wall = wall if wall >= origin_wall else origin_wall
                on_map_output(out, tup)
                append(out)
        if tracer is not None:
            tracer.record("provenance.unfold", self.name, started, count=len(unfolded))
        self.emit_many(batch, self.DATA_PORT)
        if unfolded:
            self.emit_many(unfolded, self.UNFOLDED_PORT)


def attach_su(
    query: Query,
    producer: Operator,
    name: str = "su",
    fused: bool = True,
) -> Tuple[Operator, Operator]:
    """Insert an SU fed by ``producer`` into ``query``.

    Returns ``(data_operator, unfolded_operator)``: connect the Sink (or the
    Send feeding the next instance) to ``data_operator``'s next free output
    port, and the provenance consumer to ``unfolded_operator``.

    With ``fused=True`` a single :class:`SUOperator` is used; with
    ``fused=False`` the standard-operator composition of Figure 5B
    (Multiplex + unfolding Map) is built instead.
    """
    if fused:
        su = query.add(SUOperator(name))
        query.connect(producer, su)
        return su, su
    multiplex = query.add_multiplex(f"{name}_multiplex")
    unfold = query.add(UnfoldMapOperator(f"{name}_unfold"))
    query.connect(producer, multiplex)
    query.connect(multiplex, unfold)
    return multiplex, unfold
