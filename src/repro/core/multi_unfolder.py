"""The multi-stream unfolder (MU) operator of section 6.

The MU operator completes the unfolding of a *derived* stream (the unfolded
delivering stream of the local instance) using one or more *upstream*
unfolded delivering streams received from instances closer to the sources
(Definition 6.4):

* a derived tuple whose originating part is of type SOURCE is already
  complete and is forwarded unchanged;
* a derived tuple whose originating part is of type REMOTE is replaced by the
  upstream tuples whose (delivering) ``sink_id`` equals the derived tuple's
  ``id_o`` -- i.e. the upstream unfolding of the very tuple that crossed the
  process boundary.

The replacement is applied *recursively* by the fused MU: when the matched
upstream tuple's own originating part is still REMOTE (its producing instance
was itself fed across a process boundary, as happens with chained boundaries
-- e.g. key-sharded stages whose partition, replicas and merge live on
different instances), the combined tuple re-enters the derived path and keeps
resolving against deeper upstream streams until it bottoms out at SOURCE
tuples.

Two implementations are provided, as in the paper: the fused
:class:`MUOperator` and :func:`attach_mu` with ``fused=False``, the
composition of standard operators of Figure 8 (Union of the upstream
streams, a Join matching ``ID`` with ``IDO``, and a Multiplex/Filter/Union
bypass for SOURCE tuples in the derived stream).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Set, Tuple

from repro.core.types import TupleType
from repro.core.unfolder import (
    ORIGIN_ID_FIELD,
    ORIGIN_TYPE_FIELD,
    SINK_ID_FIELD,
    SINK_PREFIX,
    SINK_TS_FIELD,
)
from repro.spe.operators.base import MultiInputOperator, Operator
from repro.spe.query import Query
from repro.spe.tuples import StreamTuple


#: enum value aliases for the per-tuple matching below.
_SOURCE_VALUE = TupleType.SOURCE.value
_REMOTE_VALUE = TupleType.REMOTE.value

#: schema tuple -> (sink-part keys, origin-part keys): the ``sink_`` /
#: origin partition of an unfolded schema, computed once per schema instead
#: of re-scanning every key of every matched tuple.
_PART_KEYS: Dict[Tuple[str, ...], Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}


def _part_keys(keys: Tuple[str, ...]) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    split = _PART_KEYS.get(keys)
    if split is None:
        if len(_PART_KEYS) > 1024:  # degenerate dynamic schemas
            _PART_KEYS.clear()
        split = _PART_KEYS[keys] = (
            tuple(
                key
                for key in keys
                if key.startswith(SINK_PREFIX) or key in (SINK_TS_FIELD, SINK_ID_FIELD)
            ),
            tuple(key for key in keys if not key.startswith(SINK_PREFIX)),
        )
    return split


def _sink_part(tup: StreamTuple) -> Dict[str, Any]:
    """The attributes describing the (local) sink tuple of an unfolded tuple."""
    values = tup.values
    return {key: values[key] for key in _part_keys(tuple(values))[0]}


def _origin_part(tup: StreamTuple) -> Dict[str, Any]:
    """The attributes describing the originating tuple of an unfolded tuple."""
    values = tup.values
    return {key: values[key] for key in _part_keys(tuple(values))[1]}


def combine_derived_and_upstream(
    derived: StreamTuple, upstream: StreamTuple
) -> Dict[str, Any]:
    """Merge a derived tuple's sink part with an upstream tuple's origin part.

    This implements the "replacement" of Definition 6.4: the REMOTE
    originating tuple carried by ``derived`` is substituted by the originating
    tuples that ``upstream`` (produced on the instance that created the REMOTE
    tuple) carries.
    """
    values = _sink_part(derived)
    values.update(_origin_part(upstream))
    return values


class MUOperator(MultiInputOperator):
    """Fused multi-stream unfolder (Definition 6.4, Figure 6).

    Input port 0 must carry the derived stream; every further input port is
    an upstream unfolded delivering stream.  ``retention`` bounds how far
    apart (in event time) a derived tuple and the matching upstream tuples
    can be; the paper sets it to the sum of the window sizes of the stateful
    operators deployed on the instance producing the derived stream.
    """

    max_inputs = None
    max_outputs = 1

    DERIVED_PORT = 0

    def __init__(self, name: str, retention: float) -> None:
        super().__init__(name)
        self.retention = float(retention)
        self._upstream_by_id: Dict[str, List[StreamTuple]] = {}
        self._upstream_order: Deque[StreamTuple] = deque()
        #: (sink_id, id_o) pairs already indexed; a logical tuple whose id
        #: crosses several process boundaries (e.g. multiplex copies, which
        #: share their input's id) ships the same unfolding record on every
        #: boundary's upstream stream, and double-matching it would duplicate
        #: sources in the final provenance.
        self._upstream_pairs: Set[Tuple[Any, Any]] = set()
        self._derived_by_origin: Dict[str, List[StreamTuple]] = {}
        self._derived_order: Deque[StreamTuple] = deque()

    # -- processing --------------------------------------------------------------
    def process_tuple(self, tup: StreamTuple, input_index: int) -> None:
        if input_index == self.DERIVED_PORT:
            self._process_derived(tup)
        else:
            self._process_upstream(tup)

    def _process_derived(self, derived: StreamTuple) -> None:
        values = derived.values
        if values.get(ORIGIN_TYPE_FIELD) == _SOURCE_VALUE:
            self.emit(derived)
            return
        origin_id = values.get(ORIGIN_ID_FIELD)
        for upstream in self._upstream_by_id.get(origin_id, ()):  # already received
            self._emit_combined(derived, upstream)
        self._derived_by_origin.setdefault(origin_id, []).append(derived)
        self._derived_order.append(derived)

    def _process_upstream(self, upstream: StreamTuple) -> None:
        values = upstream.values
        sink_id = values.get(SINK_ID_FIELD)
        if (
            sink_id == values.get(ORIGIN_ID_FIELD)
            and values.get(ORIGIN_TYPE_FIELD) == _REMOTE_VALUE
        ):
            # REMOTE identity record: a boundary SU unfolded a tuple that
            # merely *passed through* its instance (Receive -> forwarding
            # operators -> Send), so the unfolding is the tuple itself.  It
            # adds no provenance information -- the informative record for
            # this id comes from the boundary where the id was minted -- and
            # combining with it would loop the recursive replacement forever.
            # (SOURCE identity records, by contrast, are kept: they terminate
            # a chain by delivering the originating source tuple's payload.)
            return
        pair = (sink_id, values.get(ORIGIN_ID_FIELD))
        if pair in self._upstream_pairs:
            return
        self._upstream_pairs.add(pair)
        self._upstream_by_id.setdefault(sink_id, []).append(upstream)
        self._upstream_order.append(upstream)
        for derived in self._derived_by_origin.get(sink_id, ()):  # waiting derived tuples
            self._emit_combined(derived, upstream)

    def _emit_combined(self, derived: StreamTuple, upstream: StreamTuple) -> None:
        out = StreamTuple.owned(
            ts=max(derived.ts, upstream.ts),
            values=combine_derived_and_upstream(derived, upstream),
        )
        out.wall = max(derived.wall, upstream.wall)
        newer, older = (derived, upstream) if derived.ts >= upstream.ts else (upstream, derived)
        self.provenance.on_join_output(out, newer, older)
        if out.values.get(ORIGIN_TYPE_FIELD) != _SOURCE_VALUE:
            # The upstream unfolding itself crossed a process boundary
            # (chained boundaries): the combined tuple still references a
            # REMOTE originating tuple, so it becomes a derived tuple again
            # and keeps resolving against the deeper upstream streams.  The
            # chain of unique ids is finite and acyclic (each hop moves one
            # instance closer to the sources), so this terminates.
            self._process_derived(out)
            return
        self.emit(out)

    # -- state management -----------------------------------------------------------
    def on_watermark(self, watermark: float) -> None:
        if watermark == float("inf"):
            return
        horizon = watermark - self.retention
        for tup in self._purge(
            self._upstream_order, self._upstream_by_id, SINK_ID_FIELD, horizon
        ):
            self._upstream_pairs.discard(
                (tup.get(SINK_ID_FIELD), tup.get(ORIGIN_ID_FIELD))
            )
        self._purge(self._derived_order, self._derived_by_origin, ORIGIN_ID_FIELD, horizon)

    @staticmethod
    def _purge(
        order: Deque[StreamTuple],
        index: Dict[str, List[StreamTuple]],
        key_field: str,
        horizon: float,
    ) -> List[StreamTuple]:
        purged: List[StreamTuple] = []
        while order and order[0].ts < horizon:
            tup = order.popleft()
            purged.append(tup)
            key = tup.get(key_field)
            bucket = index.get(key)
            if not bucket:
                continue
            try:
                bucket.remove(tup)
            except ValueError:  # pragma: no cover - tuple already removed
                pass
            if not bucket:
                del index[key]
        return purged

    def buffered_tuples(self) -> int:
        """Number of tuples currently buffered while waiting for matches."""
        return len(self._upstream_order) + len(self._derived_order)


def attach_mu(
    query: Query,
    retention: float,
    upstream_count: int,
    name: str = "mu",
    fused: bool = True,
    derived_may_contain_sources: bool = True,
) -> "MUPorts":
    """Create an MU inside ``query`` and return its connection points.

    With ``fused=True`` a single :class:`MUOperator` is added.  With
    ``fused=False`` the standard-operator composition of Figure 8 is built: a
    Union merging the upstream streams (only when there are two or more), a
    Join matching upstream ``sink_id`` with derived ``id_o``, and -- when the
    derived stream may contain SOURCE tuples -- a Multiplex plus two Filters
    and a final Union that bypass complete tuples around the Join.
    """
    if fused:
        mu = query.add(MUOperator(name, retention))
        return MUPorts(derived_entry=mu, upstream_entry=mu, output=mu, fused=True)

    join = query.add_join(
        f"{name}_join",
        window_size=retention,
        predicate=lambda upstream, derived: upstream.get(SINK_ID_FIELD)
        == derived.get(ORIGIN_ID_FIELD),
        combiner=lambda upstream, derived: combine_derived_and_upstream(derived, upstream),
    )
    # The upstream union is always created (even for a single upstream
    # stream) so that the Join's left input is guaranteed to be the upstream
    # side regardless of the order in which the caller wires the streams.
    upstream_union = query.add_union(f"{name}_upstream_union")
    query.connect(upstream_union, join)
    upstream_entry: Operator = upstream_union

    if derived_may_contain_sources:
        multiplex = query.add_multiplex(f"{name}_multiplex")
        not_source = query.add_filter(
            f"{name}_filter_remote",
            lambda t: t.get(ORIGIN_TYPE_FIELD) != TupleType.SOURCE.value,
        )
        only_source = query.add_filter(
            f"{name}_filter_source",
            lambda t: t.get(ORIGIN_TYPE_FIELD) == TupleType.SOURCE.value,
        )
        output_union = query.add_union(f"{name}_output_union")
        query.connect(multiplex, not_source)
        query.connect(multiplex, only_source)
        query.connect(not_source, join)
        query.connect(only_source, output_union)
        query.connect(join, output_union)
        return MUPorts(
            derived_entry=multiplex,
            upstream_entry=upstream_entry,
            output=output_union,
            fused=False,
        )

    query_derived_entry = join
    return MUPorts(
        derived_entry=query_derived_entry,
        upstream_entry=upstream_entry,
        output=join,
        fused=False,
    )


class MUPorts:
    """Connection points of an MU created by :func:`attach_mu`.

    * connect the derived stream's producer (or Receive) to ``derived_entry``,
    * connect every upstream stream's producer (or Receive) to
      ``upstream_entry``,
    * connect ``output`` to the provenance Sink (or to a Send for deeper
      deployments).

    For the fused MU the derived stream must be connected **first** (it must
    own input port 0).  For the composed MU, the upstream side must be
    connected to the Join **before** the derived side (the Join's left input
    is the upstream union), which :func:`attach_mu` already guarantees.
    """

    def __init__(
        self,
        derived_entry: Operator,
        upstream_entry: Operator,
        output: Operator,
        fused: bool,
    ) -> None:
        self.derived_entry = derived_entry
        self.upstream_entry = upstream_entry
        self.output = output
        self.fused = fused
