"""GeneaLog's operator instrumentation (section 4.1 of the paper).

:class:`GeneaLogProvenance` implements the
:class:`~repro.spe.provenance_api.ProvenanceManager` hooks so that every
tuple created by an operator carries the fixed-size metadata of
:class:`~repro.core.meta.GeneaLogMeta`:

* Source      -> ``T = SOURCE`` (no pointers),
* Map         -> ``T = MAP``, ``U1`` = contributing input,
* Multiplex   -> ``T = MULTIPLEX``, ``U1`` = contributing input,
* Join        -> ``T = JOIN``, ``U1`` = newer input, ``U2`` = older input,
* Aggregate   -> ``T = AGGREGATE``, ``U2`` = earliest window tuple,
  ``U1`` = latest window tuple, ``N`` chaining consecutive window tuples,
* Send        -> serialises ``T`` (downgraded to ``REMOTE`` unless it is
  ``SOURCE``) together with the tuple's unique ``ID``,
* Receive     -> re-attaches the serialised type and ``ID`` to the tuple
  object created on the receiving side.

Filter and Union forward tuples, so no hook exists for them.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.core.meta import GeneaLogMeta, require_meta
from repro.core.traversal import find_provenance
from repro.core.types import TupleType
from repro.spe.provenance_api import ProvenanceManager
from repro.spe.tuples import StreamTuple


#: plain-dict views of the :class:`TupleType` enum for the per-tuple wire
#: hooks: member/value lookups through the enum machinery cost a property
#: descriptor call each, which is measurable at channel rates.
_TYPE_BY_VALUE = {member.value: member for member in TupleType}
_SOURCE = TupleType.SOURCE
_MULTIPLEX = TupleType.MULTIPLEX
_SOURCE_VALUE = TupleType.SOURCE.value
_REMOTE_VALUE = TupleType.REMOTE.value
_REMOTE = TupleType.REMOTE


class GeneaLogProvenance(ProvenanceManager):
    """GeneaLog instrumentation: fixed-size metadata, pointer-based linking.

    Parameters
    ----------
    node_id:
        Identifier of the SPE instance this manager is installed on.  It
        prefixes the unique tuple ``ID``\\ s so that ids remain unique across
        instances (footnote 2 of section 6).
    record_traversal_times:
        When True (the default), :meth:`unfold` records how long every
        contribution-graph traversal took; the experiment harness reads these
        samples to reproduce Figure 14.
    """

    name = "GL"

    #: telemetry span tracer.  A class attribute defaulting to None (same
    #: contract as Operator.tracer) so managers revived from a shipped plan
    #: stay silent until the worker-side obs layer opts them in.
    tracer = None

    def __init__(self, node_id: str = "local", record_traversal_times: bool = True) -> None:
        self.node_id = node_id
        self.record_traversal_times = record_traversal_times
        self.traversal_times_s: List[float] = []
        self._id_counter = itertools.count()

    # -- id management -------------------------------------------------------
    def _new_id(self) -> str:
        return f"{self.node_id}:{next(self._id_counter)}"

    def tuple_id(self, tup: StreamTuple) -> Optional[str]:
        # Ids are assigned lazily: only tuples that actually reach an SU, an
        # MU or a process boundary ever need one (section 6), so the common
        # per-tuple path stays as cheap as possible.
        #
        # A Multiplex copy is the same logical tuple as its input (it only
        # exists so that two downstream branches get their own object), so it
        # resolves to its input's id.  This is what makes the standard-
        # operator SU composition of Figure 5B (Multiplex + unfolding Map)
        # interchangeable with the fused SU: the copy fed to the Send/Sink
        # and the copy fed to the unfolding Map report the same id.
        meta = require_meta(tup)
        while meta.type is _MULTIPLEX and meta.u1 is not None:
            tup = meta.u1
            meta = require_meta(tup)
        if meta.tuple_id is None:
            meta.tuple_id = f"{self.node_id}:{next(self._id_counter)}"
        return meta.tuple_id

    # -- instrumented creation hooks -------------------------------------------
    def on_source_output(self, tup: StreamTuple) -> None:
        tup.meta = GeneaLogMeta(TupleType.SOURCE)

    def on_map_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        require_meta(in_tuple)
        out_tuple.meta = GeneaLogMeta(TupleType.MAP, u1=in_tuple)

    def on_multiplex_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        require_meta(in_tuple)
        out_tuple.meta = GeneaLogMeta(TupleType.MULTIPLEX, u1=in_tuple)

    def on_join_output(
        self, out_tuple: StreamTuple, newer: StreamTuple, older: StreamTuple
    ) -> None:
        require_meta(newer)
        require_meta(older)
        out_tuple.meta = GeneaLogMeta(TupleType.JOIN, u1=newer, u2=older)

    def on_aggregate_output(
        self,
        out_tuple: StreamTuple,
        window: Sequence[StreamTuple],
        contributors: Optional[Sequence[StreamTuple]] = None,
    ) -> None:
        # Window-provenance optimisation (paper section 9, item i): when the
        # aggregate declares that only one or two window tuples actually
        # contributed (e.g. max/min, first/last), the output can reuse the
        # single-parent (MAP) or two-parent (JOIN) pointer layout instead of
        # chaining the whole window, so non-contributing tuples become
        # reclaimable immediately.  Larger subsets fall back to the full
        # window: the N chain is shared across overlapping windows, so a
        # partial chain could leak tuples from other windows into the
        # traversal.
        if contributors is not None and 0 < len(contributors) <= 2:
            ordered = sorted(contributors, key=lambda t: t.ts)
            for contributor in ordered:
                require_meta(contributor)
            if len(ordered) == 1:
                out_tuple.meta = GeneaLogMeta(TupleType.MAP, u1=ordered[0])
            else:
                out_tuple.meta = GeneaLogMeta(
                    TupleType.JOIN, u1=ordered[-1], u2=ordered[0]
                )
            return
        if not window:
            out_tuple.meta = GeneaLogMeta(TupleType.AGGREGATE)
            return
        earliest = window[0]
        latest = window[-1]
        # N-chain the window in place; ``require_meta`` inlined (this loop
        # runs once per window tuple per flush, the call adds up).
        it = iter(window)
        current = next(it)
        for following in it:
            meta = current.meta
            if meta is None:
                meta = current.meta = GeneaLogMeta(_SOURCE)
            meta.n = following
            current = following
        require_meta(latest)
        out_tuple.meta = GeneaLogMeta(TupleType.AGGREGATE, u1=latest, u2=earliest)

    # -- process boundary hooks ---------------------------------------------------
    def on_send(self, tup: StreamTuple) -> Dict[str, Any]:
        meta = require_meta(tup)
        # inlined :meth:`tuple_id` (this is the per-crossing hot path):
        # resolve Multiplex copies to their input, assign the lazy id.
        while meta.type is _MULTIPLEX and meta.u1 is not None:
            meta = require_meta(meta.u1)
        tuple_id = meta.tuple_id
        if tuple_id is None:
            tuple_id = meta.tuple_id = f"{self.node_id}:{next(self._id_counter)}"
        return {
            "type": _SOURCE_VALUE if meta.type is _SOURCE else _REMOTE_VALUE,
            "id": tuple_id,
        }

    def on_receive(self, tup: StreamTuple, payload: Dict[str, Any]) -> None:
        tuple_type = _TYPE_BY_VALUE.get(payload.get("type"), _REMOTE)
        tup.meta = GeneaLogMeta(tuple_type, tuple_id=payload.get("id"))

    # -- provenance retrieval --------------------------------------------------------
    def unfold(self, tup: StreamTuple) -> List[StreamTuple]:
        if not self.record_traversal_times and self.tracer is None:
            return find_provenance(tup)
        started = time.perf_counter()
        originating = find_provenance(tup)
        elapsed = time.perf_counter() - started
        if self.record_traversal_times:
            self.traversal_times_s.append(elapsed)
        if self.tracer is not None:
            # The interval is already measured; hand it over instead of
            # timing the traversal twice.
            self.tracer.record(
                "provenance.traversal",
                self.node_id,
                started,
                count=len(originating),
                duration=elapsed,
            )
        return originating
