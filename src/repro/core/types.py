"""Tuple types used by GeneaLog's fixed-size metadata.

The ``Type`` meta-attribute records *which operator created a tuple*.  As in
section 4 of the paper, only operators that create new tuples have a type:
Filter and Union forward existing tuples and therefore define no value.
"""

from __future__ import annotations

from enum import Enum


class TupleType(str, Enum):
    """Value of the ``T`` (Type) meta-attribute."""

    #: created by a Source; leaf of every contribution graph.
    SOURCE = "SOURCE"
    #: created by a Map (one contributing input, via U1).
    MAP = "MAP"
    #: created by a Multiplex (one contributing input, via U1).
    MULTIPLEX = "MULTIPLEX"
    #: created by a Join (two contributing inputs, via U1 and U2).
    JOIN = "JOIN"
    #: created by an Aggregate (a window of inputs, via U2 -> N ... -> U1).
    AGGREGATE = "AGGREGATE"
    #: created by an operator running in another SPE instance; local leaf.
    REMOTE = "REMOTE"

    def is_leaf(self) -> bool:
        """True for the types at which a local traversal stops."""
        return self in (TupleType.SOURCE, TupleType.REMOTE)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
