"""Traversal of the contribution graph (Listing 1 of the paper).

Given a tuple whose metadata was set by GeneaLog's instrumented operators,
:func:`find_provenance` walks the graph of ``U1``/``U2``/``N`` references
breadth-first and returns the tuple's *originating tuples* (Definition 4.1):
the contributing tuples of type ``SOURCE`` (or ``REMOTE`` when part of the
derivation happened in another SPE instance).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.meta import GeneaLogMeta, require_meta
from repro.core.types import TupleType
from repro.spe.tuples import StreamTuple

#: module-level member aliases: the BFS below runs once per unfolded tuple
#: and identity checks beat the str-enum ``==`` of ``in (...)`` membership.
_SOURCE = TupleType.SOURCE
_REMOTE = TupleType.REMOTE
_MAP = TupleType.MAP
_MULTIPLEX = TupleType.MULTIPLEX
_JOIN = TupleType.JOIN
_AGGREGATE = TupleType.AGGREGATE


def find_provenance(root: StreamTuple) -> List[StreamTuple]:
    """Return the originating tuples of ``root`` (Definition 4.1).

    This is a direct implementation of the ``findProvenance`` breadth-first
    search of Listing 1: SOURCE and REMOTE tuples are results, MAP and
    MULTIPLEX tuples contribute their single ``U1`` parent, JOIN tuples their
    ``U1``/``U2`` pair, and AGGREGATE tuples the whole window reached by
    following ``N`` from ``U2`` up to ``U1``.
    """
    result: List[StreamTuple] = []
    visited: Set[int] = {id(root)}
    queue: deque = deque([root])
    pop = queue.popleft
    push = queue.append
    seen = visited.add
    found = result.append
    while queue:
        tup = pop()
        meta = tup.meta
        if meta is None:
            meta = tup.meta = GeneaLogMeta(_SOURCE)
        tuple_type = meta.type
        if tuple_type is _SOURCE or tuple_type is _REMOTE:
            found(tup)
        elif tuple_type is _MAP or tuple_type is _MULTIPLEX:
            u1 = meta.u1
            if u1 is not None and id(u1) not in visited:
                seen(id(u1))
                push(u1)
        elif tuple_type is _JOIN:
            u1 = meta.u1
            if u1 is not None and id(u1) not in visited:
                seen(id(u1))
                push(u1)
            u2 = meta.u2
            if u2 is not None and id(u2) not in visited:
                seen(id(u2))
                push(u2)
        elif tuple_type is _AGGREGATE:
            u1 = meta.u1
            u2 = meta.u2
            if u2 is not None and id(u2) not in visited:
                seen(id(u2))
                push(u2)
            current = u2.meta.n if u2 is not None and u2.meta else None
            while current is not None and current is not u1:
                if id(current) not in visited:
                    seen(id(current))
                    push(current)
                current = require_meta(current).n
            if u1 is not None and id(u1) not in visited:
                seen(id(u1))
                push(u1)
        else:  # pragma: no cover - defensive, every enum member handled above
            raise ValueError(f"unknown tuple type {tuple_type!r}")
    return result


def _enqueue_if_not_visited(
    tup: Optional[StreamTuple], queue: deque, visited: Set[int]
) -> None:
    if tup is None:
        return
    if id(tup) in visited:
        return
    visited.add(id(tup))
    queue.append(tup)


def contribution_graph(
    root: StreamTuple,
) -> List[Tuple[StreamTuple, StreamTuple]]:
    """Return the edges ``(child, contributing_parent)`` of the contribution graph.

    Unlike :func:`find_provenance`, this helper returns the *whole* graph
    (including intermediate tuples); it is used by tests and debugging tools,
    not by the provenance capture pipeline.
    """
    edges: List[Tuple[StreamTuple, StreamTuple]] = []
    visited: Set[int] = {id(root)}
    queue: deque = deque([root])
    while queue:
        tup = queue.popleft()
        for parent in direct_contributors(tup):
            edges.append((tup, parent))
            if id(parent) not in visited:
                visited.add(id(parent))
                queue.append(parent)
    return edges


def direct_contributors(tup: StreamTuple) -> List[StreamTuple]:
    """The input tuples that directly contribute to ``tup`` (Definition 3.1)."""
    meta = require_meta(tup)
    tuple_type = meta.type
    if tuple_type in (TupleType.SOURCE, TupleType.REMOTE):
        return []
    if tuple_type in (TupleType.MAP, TupleType.MULTIPLEX):
        return [meta.u1] if meta.u1 is not None else []
    if tuple_type is TupleType.JOIN:
        return [parent for parent in (meta.u1, meta.u2) if parent is not None]
    if tuple_type is TupleType.AGGREGATE:
        return window_of(tup)
    raise ValueError(f"unknown tuple type {tuple_type!r}")  # pragma: no cover


def window_of(aggregate_tuple: StreamTuple) -> List[StreamTuple]:
    """The window of input tuples that produced an AGGREGATE-typed tuple.

    The window is reconstructed by starting at ``U2`` (the earliest tuple)
    and following ``N`` links until ``U1`` (the latest tuple, inclusive).
    """
    meta = require_meta(aggregate_tuple)
    if meta.type is not TupleType.AGGREGATE:
        raise ValueError("window_of expects an AGGREGATE-typed tuple")
    window: List[StreamTuple] = []
    seen: Set[int] = set()
    current = meta.u2
    while current is not None and id(current) not in seen:
        window.append(current)
        seen.add(id(current))
        if current is meta.u1:
            break
        current = require_meta(current).n
    if meta.u1 is not None and id(meta.u1) not in seen:
        window.append(meta.u1)
    return window


def provenance_depth(root: StreamTuple) -> int:
    """Length of the longest derivation chain from ``root`` to a leaf tuple."""
    depths: Dict[int, int] = {}

    def depth(tup: StreamTuple) -> int:
        key = id(tup)
        if key in depths:
            return depths[key]
        contributors = direct_contributors(tup)
        value = 0 if not contributors else 1 + max(depth(parent) for parent in contributors)
        depths[key] = value
        return value

    return depth(root)
