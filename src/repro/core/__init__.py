"""GeneaLog: the paper's contribution.

This package implements:

* the fixed-size per-tuple metadata (:mod:`repro.core.meta`,
  :mod:`repro.core.types`),
* the instrumented-operator hooks that set it
  (:mod:`repro.core.instrumentation`),
* the contribution-graph traversal of Listing 1
  (:mod:`repro.core.traversal`),
* the single-stream unfolder SU of section 5 (:mod:`repro.core.unfolder`),
* the multi-stream unfolder MU of section 6
  (:mod:`repro.core.multi_unfolder`),
* the Ariadne-style baseline used for comparison
  (:mod:`repro.core.baseline`),
* and the user-facing API that attaches provenance capture to a query or a
  distributed deployment (:mod:`repro.core.provenance`).
"""

from repro.core.types import TupleType
from repro.core.meta import GeneaLogMeta
from repro.core.instrumentation import GeneaLogProvenance
from repro.core.baseline import AriadneBaselineProvenance
from repro.core.traversal import find_provenance, contribution_graph
from repro.core.unfolder import SUOperator, make_unfolded_values
from repro.core.multi_unfolder import MUOperator
from repro.core.provenance import (
    ProvenanceMode,
    ProvenanceCapture,
    ProvenanceRecord,
    attach_intra_process_provenance,
    create_manager,
)

__all__ = [
    "TupleType",
    "GeneaLogMeta",
    "GeneaLogProvenance",
    "AriadneBaselineProvenance",
    "find_provenance",
    "contribution_graph",
    "SUOperator",
    "MUOperator",
    "make_unfolded_values",
    "ProvenanceMode",
    "ProvenanceCapture",
    "ProvenanceRecord",
    "attach_intra_process_provenance",
    "create_manager",
]
