"""High-level provenance API.

This module is the entry point most users need:

* :class:`ProvenanceMode` selects the technique (``NONE``/NP, ``GENEALOG``/GL,
  ``BASELINE``/BL),
* :func:`create_manager` builds the corresponding
  :class:`~repro.spe.provenance_api.ProvenanceManager`,
* :func:`attach_intra_process_provenance` takes an already-built query and
  splices provenance capture (an SU operator plus a provenance Sink) in front
  of every Sink, returning a :class:`ProvenanceCapture` from which the
  per-sink-tuple :class:`ProvenanceRecord` objects can be read after the run.

Distributed (inter-process) deployments combine SU/MU operators explicitly --
see :mod:`repro.workloads.queries` for the paper's three-instance deployments
-- but they reuse the same :class:`ProvenanceCollector` and
:class:`ProvenanceCapture` classes defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from repro.core.baseline import AriadneBaselineProvenance
from repro.core.instrumentation import GeneaLogProvenance
from repro.core.unfolder import (
    ORIGIN_TS_FIELD,
    SINK_ID_FIELD,
    SINK_PREFIX,
    SINK_TS_FIELD,
    attach_su,
)
from repro.spe.errors import QueryValidationError
from repro.spe.operators.sink import SinkOperator
from repro.spe.provenance_api import NoProvenance, ProvenanceManager
from repro.spe.query import Query
from repro.spe.tuples import StreamTuple


class ProvenanceMode(Enum):
    """Provenance technique selector, named as in the paper's evaluation."""

    #: no provenance capture at all (the paper's "NP").
    NONE = "NP"
    #: GeneaLog: fixed-size metadata + memory-reclamation based retention ("GL").
    GENEALOG = "GL"
    #: Ariadne-style annotation lists + source store ("BL").
    BASELINE = "BL"

    @classmethod
    def from_label(cls, label: str) -> "ProvenanceMode":
        """Parse "NP"/"GL"/"BL" (or enum member names) into a mode."""
        normalised = label.strip().upper()
        for mode in cls:
            if normalised in (mode.value, mode.name):
                return mode
        raise ValueError(f"unknown provenance mode {label!r}")

    @property
    def label(self) -> str:
        """The two-letter label used in the paper's figures."""
        return self.value


def create_manager(mode: ProvenanceMode, node_id: str = "local") -> ProvenanceManager:
    """Instantiate the provenance manager implementing ``mode``."""
    if mode is ProvenanceMode.NONE:
        return NoProvenance()
    if mode is ProvenanceMode.GENEALOG:
        return GeneaLogProvenance(node_id=node_id)
    if mode is ProvenanceMode.BASELINE:
        return AriadneBaselineProvenance(node_id=node_id)
    raise ValueError(f"unknown provenance mode {mode!r}")


@dataclass
class ProvenanceRecord:
    """The fine-grained provenance of one sink tuple."""

    #: timestamp of the sink tuple.
    sink_ts: float
    #: unique id of the sink tuple (None when ids are not assigned).
    sink_id: Optional[str]
    #: attributes of the sink tuple.
    sink_values: Dict[str, Any]
    #: one entry per originating source tuple: (ts, id, type, attributes).
    sources: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def source_count(self) -> int:
        """Number of source tuples contributing to the sink tuple."""
        return len(self.sources)

    def source_timestamps(self) -> List[float]:
        """Timestamps of the contributing source tuples, sorted."""
        return sorted(entry[ORIGIN_TS_FIELD] for entry in self.sources)


class ProvenanceCollector:
    """Groups unfolded tuples by sink tuple into :class:`ProvenanceRecord` objects.

    An instance of this class is used as the callback of the provenance Sink
    (the paper stores the same information on disk; keeping it in memory, or
    optionally appending it to a file, makes it available to tests and to the
    experiment harness).
    """

    def __init__(self, name: str = "provenance") -> None:
        self.name = name
        self._records: Dict[Any, ProvenanceRecord] = {}
        self.unfolded_tuples = 0

    #: schema tuple -> (sink (key, stripped-key) pairs, source keys): the
    #: ``sink_`` / source partition of an unfolded schema, computed once per
    #: schema instead of re-scanning every key of every unfolded tuple.
    _SPLIT_CACHE: Dict[Any, Any] = {}

    def add(self, unfolded: StreamTuple) -> None:
        """Consume one unfolded tuple (one sink tuple / source tuple pair)."""
        self.unfolded_tuples += 1
        values = unfolded.values
        keys = tuple(values)
        split = self._SPLIT_CACHE.get(keys)
        if split is None:
            if len(self._SPLIT_CACHE) > 1024:  # degenerate dynamic schemas
                self._SPLIT_CACHE.clear()
            split = self._SPLIT_CACHE[keys] = (
                tuple(
                    (key, key[len(SINK_PREFIX):])
                    for key in keys
                    if key.startswith(SINK_PREFIX)
                    and key not in (SINK_TS_FIELD, SINK_ID_FIELD)
                ),
                tuple(key for key in keys if not key.startswith(SINK_PREFIX)),
            )
        sink_pairs, source_keys = split
        sink_key = values.get(SINK_ID_FIELD)
        if sink_key is None:
            sink_key = (values.get(SINK_TS_FIELD), id(unfolded))
        record = self._records.get(sink_key)
        if record is None:
            record = ProvenanceRecord(
                sink_ts=values.get(SINK_TS_FIELD, unfolded.ts),
                sink_id=values.get(SINK_ID_FIELD),
                sink_values={short: values[key] for key, short in sink_pairs},
            )
            self._records[sink_key] = record
        record.sources.append({key: values[key] for key in source_keys})

    def records(self) -> List[ProvenanceRecord]:
        """Every provenance record collected so far (one per sink tuple)."""
        return list(self._records.values())

    def record_for(self, sink_id: Any) -> Optional[ProvenanceRecord]:
        """The record of the sink tuple with unique id ``sink_id``."""
        return self._records.get(sink_id)

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class ProvenanceCapture:
    """Everything :func:`attach_intra_process_provenance` adds to a query."""

    mode: ProvenanceMode
    manager: ProvenanceManager
    collectors: Dict[str, ProvenanceCollector] = field(default_factory=dict)
    provenance_sinks: Dict[str, SinkOperator] = field(default_factory=dict)

    def records(self) -> List[ProvenanceRecord]:
        """All provenance records, across every Sink of the query."""
        combined: List[ProvenanceRecord] = []
        for collector in self.collectors.values():
            combined.extend(collector.records())
        return combined

    def records_for(self, sink_name: str) -> List[ProvenanceRecord]:
        """Provenance records of one particular Sink."""
        collector = self.collectors.get(sink_name)
        return collector.records() if collector else []

    def traversal_times_s(self) -> List[float]:
        """Per-sink-tuple contribution-graph traversal times (seconds)."""
        return list(getattr(self.manager, "traversal_times_s", []))


def attach_intra_process_provenance(
    query: Query,
    mode: ProvenanceMode,
    fused: bool = True,
    keep_unfolded_tuples: bool = False,
    only_sinks: Optional[Sequence[str]] = None,
) -> ProvenanceCapture:
    """Enable provenance capture on a single-process query (section 5).

    For every Sink ``K`` of ``query``, the stream feeding ``K`` is re-routed
    through an SU operator whose ``SO`` output keeps feeding ``K`` and whose
    unfolded output ``U`` feeds a new provenance Sink (Theorem 5.3).  The
    provenance manager implementing ``mode`` is installed on every operator.
    ``only_sinks`` restricts the splicing to the named Sinks (the dataflow
    DSL's per-sink ``capture_provenance`` knob lowers to this).

    With ``mode=ProvenanceMode.NONE`` only the manager is installed (a no-op)
    and the query is left untouched.
    """
    manager = create_manager(mode)
    query.set_provenance(manager)
    capture = ProvenanceCapture(mode=mode, manager=manager)
    if mode is ProvenanceMode.NONE:
        return capture
    captured = None if only_sinks is None else set(only_sinks)
    for sink in query.sinks():
        if not sink.inputs:
            continue
        if captured is not None and sink.name not in captured:
            continue
        feeding_stream = sink.inputs[0]
        producer = query.producer_of(feeding_stream)
        if not feeding_stream.enforce_order:
            # GeneaLog's guarantees rest on timestamp-ordered processing; an
            # SU fed out of order would unfold wrong provenance.  Fail at
            # build time instead of with a StreamOrderError mid-run.
            raise QueryValidationError(
                f"cannot splice provenance capture onto the unordered stream "
                f"feeding sink {sink.name!r}; place a Sort operator between "
                f"{producer.name!r} and the sink"
            )
        port = producer.outputs.index(feeding_stream)
        query.disconnect(feeding_stream)
        data_out, unfolded_out = attach_su(
            query, producer, name=f"su_{sink.name}", fused=fused
        )
        # attach_su appended the SU's input stream to producer.outputs; move
        # it back to the disconnected stream's slot so port-sensitive
        # producers (Router: output i carries predicate i) keep routing.
        producer.outputs.insert(port, producer.outputs.pop())
        query.connect(data_out, sink)
        collector = ProvenanceCollector(name=sink.name)
        provenance_sink = query.add_sink(
            f"provenance_{sink.name}",
            callback=collector.add,
            keep_tuples=keep_unfolded_tuples,
        )
        query.connect(unfolded_out, provenance_sink)
        capture.collectors[sink.name] = collector
        capture.provenance_sinks[sink.name] = provenance_sink
    # The SU operators and provenance Sinks added above must use the same
    # manager as the rest of the query.
    query.set_provenance(manager)
    return capture
