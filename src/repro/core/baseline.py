"""Ariadne-style baseline provenance (the "BL" technique of the evaluation).

The baseline follows the state-of-the-art approach the paper compares
against (Glavic et al., "Efficient stream provenance via operator
instrumentation"): every tuple is annotated with the *variable-length list of
identifiers* of the source tuples that contributed to it, and all source
tuples are kept in a temporary store so that the annotation of a sink tuple
can later be joined back to the actual source data.

The two structural downsides the paper points out fall out of this
implementation directly:

* the annotation grows with the number of contributing source tuples (it is
  copied and concatenated at every operator), and
* the store retains *every* source tuple -- contributing or not -- because
  whether a source tuple contributed is only known once sink tuples are
  inspected.
"""

from __future__ import annotations

import itertools
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.spe.operators.base import MultiInputOperator
from repro.spe.provenance_api import ProvenanceManager
from repro.spe.tuples import StreamTuple


class BaselineAnnotation:
    """Variable-length provenance annotation carried by every tuple under BL."""

    __slots__ = ("tuple_id", "source_ids")

    def __init__(self, tuple_id: str, source_ids: Tuple[str, ...]) -> None:
        self.tuple_id = tuple_id
        self.source_ids = source_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BaselineAnnotation(id={self.tuple_id!r}, sources={len(self.source_ids)})"


class AriadneBaselineProvenance(ProvenanceManager):
    """Annotation-list + source-store provenance (the paper's BL comparator)."""

    name = "BL"

    def __init__(self, node_id: str = "local", record_traversal_times: bool = True) -> None:
        self.node_id = node_id
        self.record_traversal_times = record_traversal_times
        self.traversal_times_s: List[float] = []
        #: every source tuple seen so far, keyed by its unique id.
        self.source_store: Dict[str, StreamTuple] = {}
        self.missing_sources = 0
        self._id_counter = itertools.count()

    # -- id management ---------------------------------------------------------
    def _new_id(self) -> str:
        return f"{self.node_id}:{next(self._id_counter)}"

    def tuple_id(self, tup: StreamTuple) -> Optional[str]:
        annotation = self._annotation(tup)
        return annotation.tuple_id if annotation is not None else None

    @staticmethod
    def _annotation(tup: StreamTuple) -> Optional[BaselineAnnotation]:
        meta = tup.meta
        return meta if isinstance(meta, BaselineAnnotation) else None

    def _require_annotation(self, tup: StreamTuple) -> BaselineAnnotation:
        annotation = self._annotation(tup)
        if annotation is None:
            # A tuple created outside instrumented operators is treated as a
            # source tuple, mirroring GeneaLog's behaviour for bare tuples.
            annotation = self._register_source(tup)
        return annotation

    def _register_source(self, tup: StreamTuple) -> BaselineAnnotation:
        tuple_id = self._new_id()
        annotation = BaselineAnnotation(tuple_id, (tuple_id,))
        tup.meta = annotation
        self.source_store[tuple_id] = tup
        return annotation

    # -- instrumented creation hooks -----------------------------------------------
    def on_source_output(self, tup: StreamTuple) -> None:
        self._register_source(tup)

    def on_map_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        parent = self._require_annotation(in_tuple)
        out_tuple.meta = BaselineAnnotation(self._new_id(), tuple(parent.source_ids))

    def on_multiplex_output(self, out_tuple: StreamTuple, in_tuple: StreamTuple) -> None:
        self.on_map_output(out_tuple, in_tuple)

    def on_join_output(
        self, out_tuple: StreamTuple, newer: StreamTuple, older: StreamTuple
    ) -> None:
        newer_annotation = self._require_annotation(newer)
        older_annotation = self._require_annotation(older)
        out_tuple.meta = BaselineAnnotation(
            self._new_id(), newer_annotation.source_ids + older_annotation.source_ids
        )

    def on_aggregate_output(
        self,
        out_tuple: StreamTuple,
        window: Sequence[StreamTuple],
        contributors: Optional[Sequence[StreamTuple]] = None,
    ) -> None:
        relevant = window if contributors is None else contributors
        combined: List[str] = []
        for window_tuple in relevant:
            combined.extend(self._require_annotation(window_tuple).source_ids)
        out_tuple.meta = BaselineAnnotation(self._new_id(), tuple(combined))

    # -- process boundary hooks ---------------------------------------------------------
    def on_send(self, tup: StreamTuple) -> Dict[str, Any]:
        annotation = self._require_annotation(tup)
        return {
            "id": annotation.tuple_id,
            "sources": list(annotation.source_ids),
            # A tuple that derives from exactly one source tuple still carries
            # that source tuple's payload (it was only copied or forwarded),
            # so the receiving side can use it to populate its source store.
            "is_source": len(annotation.source_ids) == 1,
        }

    def on_receive(self, tup: StreamTuple, payload: Dict[str, Any]) -> None:
        tuple_id = payload.get("id") or self._new_id()
        source_ids = tuple(payload.get("sources", ()))
        annotation = BaselineAnnotation(tuple_id, source_ids or (tuple_id,))
        tup.meta = annotation
        if payload.get("is_source") and source_ids:
            # Source tuples shipped to a provenance node are stored there so
            # that annotations of sink tuples can be joined back to them.
            self.source_store.setdefault(source_ids[0], tup)

    # -- provenance retrieval --------------------------------------------------------------
    def unfold(self, tup: StreamTuple) -> List[StreamTuple]:
        started = time.perf_counter() if self.record_traversal_times else 0.0
        annotation = self._require_annotation(tup)
        originating: List[StreamTuple] = []
        for source_id in annotation.source_ids:
            source = self.source_store.get(source_id)
            if source is None:
                self.missing_sources += 1
                continue
            originating.append(source)
        if self.record_traversal_times:
            self.traversal_times_s.append(time.perf_counter() - started)
        return originating

    # -- accounting ----------------------------------------------------------------------------
    def retained_items(self) -> int:
        return len(self.source_store)

    def retained_bytes(self) -> int:
        total = 0
        for tup in self.source_store.values():
            total += sys.getsizeof(tup.values)
            total += sum(sys.getsizeof(v) for v in tup.values.values())
        return total


class BaselineProvenanceResolver(MultiInputOperator):
    """Joins annotated sink tuples back to the shipped source store (BL, distributed).

    In the baseline's distributed deployment every source stream is shipped to
    the provenance node and every (annotated) sink tuple is shipped there too.
    This operator consumes both:

    * input port 0 -- the raw source stream(s); the tuples were already put
      into the local manager's store by the Receive operator, so they are
      simply dropped here (the port exists to drive the watermark),
    * input port 1 -- the annotated sink tuples; each one is buffered until
      the combined watermark guarantees that every source tuple it references
      has arrived (``sink.ts + retention``), and is then expanded into one
      unfolded tuple per referenced source tuple.
    """

    max_inputs = 2
    max_outputs = 1

    SOURCES_PORT = 0
    SINKS_PORT = 1

    def __init__(self, name: str, retention: float) -> None:
        super().__init__(name)
        self.retention = float(retention)
        self._pending: List[StreamTuple] = []

    def process_tuple(self, tup: StreamTuple, input_index: int) -> None:
        if input_index == self.SOURCES_PORT:
            return
        self._pending.append(tup)

    def on_watermark(self, watermark: float) -> None:
        self._resolve_up_to(watermark)

    def on_close(self) -> None:
        self._resolve_up_to(float("inf"))

    def _resolve_up_to(self, watermark: float) -> None:
        from repro.core.unfolder import make_unfolded_values

        remaining: List[StreamTuple] = []
        for sink_tuple in self._pending:
            if watermark != float("inf") and sink_tuple.ts + self.retention > watermark:
                remaining.append(sink_tuple)
                continue
            for origin in self.provenance.unfold(sink_tuple):
                out = StreamTuple(
                    ts=sink_tuple.ts,
                    values=make_unfolded_values(sink_tuple, origin, self.provenance),
                )
                out.wall = max(sink_tuple.wall, origin.wall)
                self.emit(out)
        self._pending = remaining

    def output_watermark_for(self, input_watermark: float) -> float:
        if input_watermark == float("inf"):
            return input_watermark
        return input_watermark - self.retention

    def buffered_tuples(self) -> int:
        """Number of sink tuples waiting for their sources to arrive."""
        return len(self._pending)
