"""Reproduction of *GeneaLog: Fine-Grained Data Streaming Provenance at the Edge*.

The package is organised in five layers:

* :mod:`repro.api` -- the primary user-facing surface: a fluent dataflow DSL
  and the ``Pipeline`` facade that handles provenance splicing, scheduling
  and distributed placement in one call.
* :mod:`repro.spe` -- a lightweight, deterministic stream processing engine
  (the substrate the paper runs on, in the spirit of the Liebre SPE).
* :mod:`repro.core` -- the paper's contribution: GeneaLog's fixed-size
  provenance metadata, instrumented operators, contribution-graph traversal,
  the SU/MU unfolder operators, and the Ariadne-style baseline.
* :mod:`repro.workloads` -- synthetic Linear Road and Smart Grid workloads and
  the four evaluation queries (Q1-Q4).
* :mod:`repro.experiments` -- the measurement harness that regenerates the
  paper's figures (12, 13 and 14).
"""

from repro.api import Dataflow, Pipeline, PipelineResult, Placement
from repro.spe.tuples import StreamTuple
from repro.spe.query import Query
from repro.spe.scheduler import Scheduler
from repro.core.provenance import ProvenanceMode, attach_intra_process_provenance
from repro.core.traversal import find_provenance

__all__ = [
    "Dataflow",
    "Pipeline",
    "PipelineResult",
    "Placement",
    "StreamTuple",
    "Query",
    "Scheduler",
    "ProvenanceMode",
    "attach_intra_process_provenance",
    "find_provenance",
    "__version__",
]

__version__ = "0.1.0"
