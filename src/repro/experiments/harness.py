"""Run one experiment cell and collect the paper's metrics.

The harness deploys the requested query through the fluent
:class:`~repro.api.pipeline.Pipeline` facade (intra- or inter-process), runs
it to completion on the synthetic workload, and collects:

* throughput (source tuples per wall-clock second),
* per-sink-tuple latency,
* average and peak memory (tracemalloc samples taken during the run),
* per-sink-tuple contribution-graph traversal time (and, for distributed
  deployments, the same broken down per SPE instance),
* the size of every sink tuple's provenance (number of contributing source
  tuples),
* bytes/tuples transferred between instances (distributed deployments only).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from repro.core.provenance import ProvenanceMode
from repro.experiments.config import (
    ExperimentCell,
    WorkloadConfig,
    WorkloadScale,
    workload_config_for,
)
from repro.spe.metrics import MemorySampler, RunMetrics, merge_metrics
from repro.spe.tuples import StreamTuple
from repro.workloads.linear_road import LinearRoadConfig, LinearRoadGenerator
from repro.workloads.queries import query_pipeline
from repro.workloads.smart_grid import SmartGridConfig, SmartGridGenerator

#: how many scheduler passes between two memory samples.
MEMORY_SAMPLE_EVERY = 32


def make_supplier(config: WorkloadConfig) -> Callable[[], Iterable[StreamTuple]]:
    """Return a zero-argument callable producing the workload's tuples."""
    if isinstance(config, LinearRoadConfig):
        return LinearRoadGenerator(config).tuples
    if isinstance(config, SmartGridConfig):
        return SmartGridGenerator(config).tuples
    raise TypeError(f"unsupported workload configuration {type(config).__name__}")


def run_intra_process(
    query_name: str,
    mode: ProvenanceMode,
    workload: Optional[WorkloadConfig] = None,
    scale: WorkloadScale = WorkloadScale.SMALL,
    fused: bool = True,
) -> RunMetrics:
    """Run ``query_name`` in a single SPE instance and collect metrics."""
    workload = workload or workload_config_for(query_name, scale)
    pipeline = query_pipeline(
        query_name, make_supplier(workload), mode=mode, deployment="intra", fused=fused
    )
    pipeline.build()
    metrics = RunMetrics(query=query_name, technique=mode.label, deployment="intra")

    sampler = MemorySampler()
    sampler.start()
    started = time.perf_counter()
    result = pipeline.run(
        round_callback=lambda _: sampler.sample(),
        callback_every=MEMORY_SAMPLE_EVERY,
    )
    metrics.wall_time_s = time.perf_counter() - started
    sampler.sample()
    sampler.stop()

    metrics.source_tuples = result.source.tuples_out
    metrics.sink_tuples = result.sink.count
    metrics.latencies_s = list(result.sink.latencies)
    metrics.memory_samples_bytes = list(sampler.samples_bytes)
    metrics.memory_peak_bytes = sampler.max_bytes
    metrics.traversal_times_s = result.traversal_times_s()
    metrics.provenance_sizes = [
        record.source_count for record in result.provenance_records()
    ]
    return metrics


def run_inter_process(
    query_name: str,
    mode: ProvenanceMode,
    workload: Optional[WorkloadConfig] = None,
    scale: WorkloadScale = WorkloadScale.SMALL,
    fused: bool = True,
) -> RunMetrics:
    """Run ``query_name`` on the three-instance deployment and collect metrics."""
    workload = workload or workload_config_for(query_name, scale)
    pipeline = query_pipeline(
        query_name, make_supplier(workload), mode=mode, deployment="inter", fused=fused
    )
    pipeline.build()
    metrics = RunMetrics(query=query_name, technique=mode.label, deployment="inter")

    sampler = MemorySampler()
    sampler.start()
    started = time.perf_counter()
    result = pipeline.run(
        round_callback=lambda _: sampler.sample(),
        callback_every=MEMORY_SAMPLE_EVERY,
    )
    metrics.wall_time_s = time.perf_counter() - started
    sampler.sample()
    sampler.stop()

    metrics.source_tuples = result.source.tuples_out
    metrics.sink_tuples = result.sink.count
    metrics.latencies_s = list(result.sink.latencies)
    metrics.memory_samples_bytes = list(sampler.samples_bytes)
    metrics.memory_peak_bytes = sampler.max_bytes
    metrics.per_instance_traversal_s = result.traversal_times_by_instance()
    metrics.traversal_times_s = [
        sample
        for samples in metrics.per_instance_traversal_s.values()
        for sample in samples
    ]
    metrics.provenance_sizes = [
        record.source_count for record in result.provenance_records()
    ]
    metrics.bytes_transferred = result.bytes_transferred()
    metrics.tuples_transferred = result.tuples_transferred()
    return metrics


def run_cell(cell: ExperimentCell) -> RunMetrics:
    """Run an :class:`ExperimentCell` (repeating and merging as configured)."""
    workload = workload_config_for(cell.query, cell.scale)
    runs = []
    for _ in range(max(1, cell.repetitions)):
        if cell.deployment == "intra":
            runs.append(
                run_intra_process(cell.query, cell.mode, workload=workload, fused=cell.fused)
            )
        else:
            runs.append(
                run_inter_process(cell.query, cell.mode, workload=workload, fused=cell.fused)
            )
    merged = merge_metrics(runs)
    assert merged is not None  # repetitions >= 1
    return merged
