"""Experiment configuration: workload scales and experiment cells."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

from repro.core.provenance import ProvenanceMode
from repro.workloads.linear_road import LinearRoadConfig
from repro.workloads.smart_grid import SmartGridConfig

WorkloadConfig = Union[LinearRoadConfig, SmartGridConfig]


class WorkloadScale(Enum):
    """How much data an experiment cell processes.

    The paper runs each experiment for at least six minutes on Odroid boards;
    a pure-Python reproduction uses smaller inputs but keeps the workload
    *shape* (report rates, episode frequencies, contribution-graph sizes)
    identical, so relative NP/GL/BL behaviour is preserved.
    """

    #: a few hundred tuples -- used by unit/integration tests.
    SMOKE = "smoke"
    #: tens of thousands of tuples -- default for benchmarks.
    SMALL = "small"
    #: hundreds of thousands of tuples -- closest to the paper's runs.
    PAPER = "paper"

    @classmethod
    def from_label(cls, label: str) -> "WorkloadScale":
        """Parse a scale name, case-insensitively."""
        normalised = label.strip().lower()
        for scale in cls:
            if scale.value == normalised:
                return scale
        raise ValueError(f"unknown workload scale {label!r}")


_LINEAR_ROAD_SCALES = {
    WorkloadScale.SMOKE: LinearRoadConfig(
        n_cars=10, duration_s=600.0, breakdown_probability=0.05, seed=11
    ),
    WorkloadScale.SMALL: LinearRoadConfig(
        n_cars=60, duration_s=3600.0, breakdown_probability=0.02, seed=11
    ),
    WorkloadScale.PAPER: LinearRoadConfig(
        n_cars=200, duration_s=4 * 3600.0, breakdown_probability=0.02, seed=11
    ),
}

_SMART_GRID_SCALES = {
    WorkloadScale.SMOKE: SmartGridConfig(n_meters=12, n_days=2, seed=13),
    WorkloadScale.SMALL: SmartGridConfig(n_meters=60, n_days=6, seed=13),
    WorkloadScale.PAPER: SmartGridConfig(n_meters=200, n_days=14, seed=13),
}


def workload_config_for(query_name: str, scale: WorkloadScale) -> WorkloadConfig:
    """The default workload configuration for ``query_name`` at ``scale``.

    Q1/Q2 consume the Linear Road workload, Q3/Q4 the Smart Grid workload.
    """
    name = query_name.lower()
    if name in ("q1", "q2"):
        return _LINEAR_ROAD_SCALES[scale]
    if name in ("q3", "q4"):
        return _SMART_GRID_SCALES[scale]
    raise ValueError(f"unknown query {query_name!r}")


@dataclass
class ExperimentCell:
    """One cell of the evaluation: a query, a technique and a deployment."""

    query: str
    mode: ProvenanceMode
    deployment: str = "intra"  # "intra" or "inter"
    scale: WorkloadScale = WorkloadScale.SMALL
    repetitions: int = 1
    fused: bool = True

    def __post_init__(self) -> None:
        if self.deployment not in ("intra", "inter"):
            raise ValueError("deployment must be 'intra' or 'inter'")
        if self.query.lower() not in ("q1", "q2", "q3", "q4"):
            raise ValueError(f"unknown query {self.query!r}")

    @property
    def label(self) -> str:
        """Human-readable cell identifier, e.g. ``q1/GL/intra``."""
        return f"{self.query.lower()}/{self.mode.label}/{self.deployment}"
