"""Experiment harness reproducing the paper's evaluation (section 7).

* :mod:`repro.experiments.config` -- workload scales and experiment cells,
* :mod:`repro.experiments.harness` -- run one (query, technique, deployment)
  cell and collect throughput / latency / memory / traversal metrics,
* :mod:`repro.experiments.figures` -- regenerate Figures 12, 13 and 14 as
  text tables (``python -m repro.experiments.figures all``).
"""

from repro.experiments.config import ExperimentCell, WorkloadScale, workload_config_for
from repro.experiments.harness import run_cell, run_intra_process, run_inter_process
from repro.experiments.figures import figure12, figure13, figure14

__all__ = [
    "ExperimentCell",
    "WorkloadScale",
    "workload_config_for",
    "run_cell",
    "run_intra_process",
    "run_inter_process",
    "figure12",
    "figure13",
    "figure14",
]
