"""Regenerate the paper's result figures as text tables.

* :func:`figure12` -- intra-process throughput / latency / memory for Q1-Q4
  under NP, GL and BL (paper Figure 12),
* :func:`figure13` -- the same four metrics for the three-instance
  deployments (paper Figure 13),
* :func:`figure14` -- per-sink-tuple contribution-graph traversal times,
  intra-process and per SPE instance inter-process (paper Figure 14).

Run from the command line::

    python -m repro.experiments.figures all --scale small

Absolute numbers differ from the paper (a pure-Python SPE on a workstation is
not a Java SPE on an Odroid); the comparisons that matter are the *relative*
ones: GL stays within a few percent of NP while BL collapses, and traversal
cost grows with the contribution-graph size.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.provenance import ProvenanceMode
from repro.experiments.config import ExperimentCell, WorkloadScale
from repro.experiments.harness import run_cell
from repro.spe.metrics import RunMetrics, StatSummary

QUERIES = ("q1", "q2", "q3", "q4")
MODES = (ProvenanceMode.NONE, ProvenanceMode.GENEALOG, ProvenanceMode.BASELINE)


@dataclass
class FigureResult:
    """All per-cell metrics of one figure, plus a rendered text table."""

    name: str
    cells: Dict[str, RunMetrics] = field(default_factory=dict)
    text: str = ""

    def cell(self, query: str, mode: ProvenanceMode) -> Optional[RunMetrics]:
        """Metrics of one (query, technique) cell, if it was run."""
        return self.cells.get(f"{query}/{mode.label}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _percentage(value: float, reference: float) -> str:
    if reference == 0:
        return "   n/a"
    return f"{(value - reference) / reference * 100:+6.1f}%"


def _collect(
    deployment: str,
    scale: WorkloadScale,
    repetitions: int,
    modes: Sequence[ProvenanceMode] = MODES,
    queries: Sequence[str] = QUERIES,
) -> Dict[str, RunMetrics]:
    cells: Dict[str, RunMetrics] = {}
    for query in queries:
        for mode in modes:
            cell = ExperimentCell(
                query=query,
                mode=mode,
                deployment=deployment,
                scale=scale,
                repetitions=repetitions,
            )
            cells[f"{query}/{mode.label}"] = run_cell(cell)
    return cells


def _performance_table(name: str, cells: Dict[str, RunMetrics]) -> str:
    lines = [
        f"{name}: throughput / latency / memory per query and technique",
        f"{'query':<6}{'tech':<6}{'tput (t/s)':>14}{'vs NP':>9}"
        f"{'latency (ms)':>14}{'vs NP':>9}"
        f"{'p50 (ms)':>11}{'p95 (ms)':>11}{'p99 (ms)':>11}"
        f"{'avg mem (MB)':>14}{'max mem (MB)':>14}",
    ]
    for query in QUERIES:
        reference = cells.get(f"{query}/NP")
        for mode in MODES:
            metrics = cells.get(f"{query}/{mode.label}")
            if metrics is None:
                continue
            throughput = metrics.throughput_tps
            latency = metrics.latency
            latency_ms = latency.mean * 1000.0
            versus_throughput = (
                _percentage(throughput, reference.throughput_tps) if reference else "   n/a"
            )
            versus_latency = (
                _percentage(latency_ms, reference.latency.mean * 1000.0)
                if reference and reference.latency.mean
                else "   n/a"
            )
            lines.append(
                f"{query:<6}{mode.label:<6}{throughput:>14.0f}{versus_throughput:>9}"
                f"{latency_ms:>14.2f}{versus_latency:>9}"
                f"{latency.p50 * 1000:>11.2f}{latency.p95 * 1000:>11.2f}"
                f"{latency.p99 * 1000:>11.2f}"
                f"{metrics.memory_average_mb:>14.3f}{metrics.memory_max_mb:>14.3f}"
            )
        lines.append("")
    return "\n".join(lines)


def figure12(
    scale: WorkloadScale = WorkloadScale.SMALL, repetitions: int = 1
) -> FigureResult:
    """Reproduce Figure 12: intra-process provenance overhead."""
    cells = _collect("intra", scale, repetitions)
    result = FigureResult(name="Figure 12 (intra-process)", cells=cells)
    result.text = _performance_table(result.name, cells)
    return result


def figure13(
    scale: WorkloadScale = WorkloadScale.SMALL, repetitions: int = 1
) -> FigureResult:
    """Reproduce Figure 13: inter-process provenance overhead."""
    cells = _collect("inter", scale, repetitions)
    result = FigureResult(name="Figure 13 (inter-process)", cells=cells)
    result.text = _performance_table(result.name, cells)
    return result


def figure14(
    scale: WorkloadScale = WorkloadScale.SMALL, repetitions: int = 1
) -> FigureResult:
    """Reproduce Figure 14: contribution-graph traversal time per sink tuple."""
    intra = _collect("intra", scale, repetitions, modes=(ProvenanceMode.GENEALOG,))
    inter = _collect("inter", scale, repetitions, modes=(ProvenanceMode.GENEALOG,))
    cells: Dict[str, RunMetrics] = {}
    for key, metrics in intra.items():
        cells[f"intra/{key}"] = metrics
    for key, metrics in inter.items():
        cells[f"inter/{key}"] = metrics
    result = FigureResult(name="Figure 14 (traversal time)", cells=cells)

    lines = [
        "Figure 14: contribution-graph traversal time per sink tuple (GeneaLog)",
        f"{'query':<6}{'deployment':<22}{'mean (ms)':>12}"
        f"{'p50 (ms)':>11}{'p95 (ms)':>11}{'p99 (ms)':>11}"
        f"{'max (ms)':>12}{'samples':>10}",
    ]
    for query in QUERIES:
        intra_metrics = cells.get(f"intra/{query}/GL")
        if intra_metrics is not None:
            summary = intra_metrics.traversal
            lines.append(
                f"{query:<6}{'intra-process':<22}{summary.mean * 1000:>12.4f}"
                f"{summary.p50 * 1000:>11.4f}{summary.p95 * 1000:>11.4f}"
                f"{summary.p99 * 1000:>11.4f}"
                f"{summary.maximum * 1000:>12.4f}{summary.count:>10}"
            )
        inter_metrics = cells.get(f"inter/{query}/GL")
        if inter_metrics is not None:
            for instance, samples in sorted(inter_metrics.per_instance_traversal_s.items()):
                summary = StatSummary.of(samples)
                lines.append(
                    f"{query:<6}{'inter (' + instance + ')':<22}{summary.mean * 1000:>12.4f}"
                    f"{summary.p50 * 1000:>11.4f}{summary.p95 * 1000:>11.4f}"
                    f"{summary.p99 * 1000:>11.4f}"
                    f"{summary.maximum * 1000:>12.4f}{summary.count:>10}"
                )
        lines.append("")
    result.text = "\n".join(lines)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: regenerate one figure (or all of them)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figure",
        choices=("fig12", "fig13", "fig14", "all"),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=WorkloadScale.SMALL.value,
        choices=[scale.value for scale in WorkloadScale],
        help="workload size (smoke/small/paper)",
    )
    parser.add_argument(
        "--repetitions", type=int, default=1, help="runs to average per cell"
    )
    args = parser.parse_args(argv)
    scale = WorkloadScale.from_label(args.scale)

    selected = {
        "fig12": [figure12],
        "fig13": [figure13],
        "fig14": [figure14],
        "all": [figure12, figure13, figure14],
    }[args.figure]
    for figure in selected:
        result = figure(scale=scale, repetitions=args.repetitions)
        print(result.text)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(main())
